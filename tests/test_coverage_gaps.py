"""Tests for paths the per-module suites leave untouched."""

import numpy as np
import pytest

from repro.attack import TRIGGER_2X2, BackdoorConfig, run_single_attack
from repro.attack.placement import PlacementConfig
from repro.datasets import AttackScenario, SampleGenerator
from repro.models import CNNLSTMClassifier, Trainer, TrainingConfig
from repro.nn import Linear, Module, Sequential, Tensor
from repro.radar import HeatmapConfig
from repro.xai import ShapConfig

from .conftest import MICRO_MODEL_CONFIG, make_micro_generation_config


# ----------------------------------------------------------------------
# nn.Module traversal corners
# ----------------------------------------------------------------------
def test_modules_traverses_lists(rng):
    class Holder(Module):
        def __init__(self):
            super().__init__()
            self.pieces = [Linear(2, 2, rng), Linear(2, 2, rng)]

        def forward(self, x):
            return x

    holder = Holder()
    modules = list(holder.modules())
    assert len(modules) == 3  # holder + two linears
    names = [name for name, _ in holder.named_parameters()]
    assert "pieces.0.weight" in names and "pieces.1.bias" in names


def test_empty_module_dtype_default():
    class Empty(Module):
        def forward(self, x):
            return x

    assert Empty().dtype == np.float64


def test_nested_sequential(rng):
    inner = Sequential(Linear(2, 2, rng))
    outer = Sequential(inner, Linear(2, 3, rng))
    out = outer(Tensor(np.zeros((1, 2))))
    assert out.shape == (1, 3)
    assert len(list(outer.named_parameters())) == 4


# ----------------------------------------------------------------------
# heatmap config corners
# ----------------------------------------------------------------------
def test_heatmap_finalize_without_compression(micro_generator):
    from dataclasses import replace

    config = replace(micro_generator.config.heatmap, log_scale=0.0)
    sample_cubes = micro_generator.generate_sample(
        "push", 1.0, 0.0, return_cubes=True
    )
    from repro.radar import drai_sequence

    heatmaps = drai_sequence(sample_cubes, config)
    assert heatmaps.max() == pytest.approx(1.0)  # plain peak normalization


def test_chirp_range_bin_rounds():
    from repro.radar import ChirpConfig

    chirp = ChirpConfig()
    resolution = chirp.range_resolution_m
    assert chirp.range_bin_for(resolution * 10.4) == 10
    assert chirp.range_bin_for(resolution * 10.6) == 11


# ----------------------------------------------------------------------
# generation with several participants
# ----------------------------------------------------------------------
def test_generation_multiple_participants():
    from dataclasses import replace

    config = replace(
        make_micro_generation_config(), participants=(0.9, 1.0, 1.1)
    )
    generator = SampleGenerator(config, seed=4)
    dataset = generator.generate_dataset(samples_per_class=4)
    participants = {meta.participant for meta in dataset.meta}
    assert participants <= {0, 1, 2}
    assert len(participants) >= 2  # randomization actually mixes people


# ----------------------------------------------------------------------
# consensus with ties
# ----------------------------------------------------------------------
def test_consensus_top_k_with_ties():
    from repro.xai import FrameImportanceResult

    shap_values = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
    tops = np.array([[0, 1], [1, 2]])
    result = FrameImportanceResult(shap_values=shap_values, top_frames=tops, k=2)
    consensus = result.consensus_top_k()
    assert 1 in consensus  # the frame both samples agree on always wins


# ----------------------------------------------------------------------
# end-to-end convenience wrapper
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_run_single_attack_wrapper():
    config = make_micro_generation_config()
    attacker_gen = SampleGenerator(config, seed=21, environment_seed=5)
    attack_gen = SampleGenerator(config, seed=22, environment_seed=6)
    train_gen = SampleGenerator(config, seed=20, environment_seed=5)
    dataset = train_gen.generate_dataset(samples_per_class=4)
    clean_train, clean_test = dataset.split(0.7, np.random.default_rng(0))
    training = TrainingConfig(epochs=2, validation_fraction=0.0, seed=0)
    surrogate = CNNLSTMClassifier(MICRO_MODEL_CONFIG, np.random.default_rng(1))
    attacker_data = attacker_gen.generate_dataset(samples_per_class=3)
    Trainer(training).fit(surrogate, attacker_data.x, attacker_data.y)

    result = run_single_attack(
        surrogate,
        attacker_gen,
        attack_gen,
        clean_train,
        clean_test,
        BackdoorConfig(
            scenario=AttackScenario("push", "pull", similar=True),
            trigger=TRIGGER_2X2,
            num_poisoned_frames=2,
            shap=ShapConfig(num_samples=24, seed=0),
            placement=PlacementConfig(grid_nx=1, grid_nz=1),
            num_shap_samples=1,
            planning_position=(1.0, 0.0),
        ),
        MICRO_MODEL_CONFIG,
        training,
        num_attack_samples=3,
        seed=5,
    )
    assert result.num_poisoned >= 1
    assert result.plan.attachment_name
    assert 0.0 <= result.metrics.asr <= 1.0
    assert result.model.predict(clean_test.x).shape == (len(clean_test),)
