"""Dashboard coverage for campaign records: data layer + HTTP routes."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaigns import CampaignRecord, write_campaign_record
from repro.dashboard.data import DashboardData
from repro.dashboard.server import build_dashboard_server
from repro.runtime.records import RunRecord, write_run_record


def _record(name="dash", cells=None):
    return CampaignRecord(
        name=name,
        config={"campaign": name},
        config_digest="ab" * 32,
        cells=cells if cells is not None else [
            {"key": "cell-0000-fig8-s0", "experiment": "fig8", "seed": 0,
             "status": "done", "wall_time_s": 1.0,
             "metrics": {"accuracy": 0.9}},
            {"key": "cell-0001-fig8-s1", "experiment": "fig8", "seed": 1,
             "status": "failed", "wall_time_s": 0.5, "error": "boom"},
            {"key": "cell-0002-fig9-s0", "experiment": "fig9", "seed": 0,
             "status": "done", "wall_time_s": 2.0, "metrics": {}},
        ],
        outcome={"status": "failed", "cells_total": 3},
    )


@pytest.fixture()
def runs_dir(tmp_path):
    directory = tmp_path / "runs"
    directory.mkdir()
    return directory


def test_campaigns_listing_excludes_plain_runs(runs_dir):
    write_campaign_record(_record(), runs_dir)
    write_run_record(RunRecord(name="fig7"), runs_dir)
    data = DashboardData(runs_dir=runs_dir)
    rows = data.campaigns()
    assert [row["name"] for row in rows] == ["dash"]
    index = data.index()
    assert index["campaign_count"] == 1
    assert index["latest_campaign"]["name"] == "dash"
    assert index["run_count"] == 2  # generic count still sees both


def test_campaign_detail_builds_cell_matrix(runs_dir):
    path = write_campaign_record(_record(), runs_dir)
    data = DashboardData(runs_dir=runs_dir)
    detail = data.campaign_detail(path.name)
    matrix = detail["matrix"]
    assert matrix["rows"] == ["fig8", "fig9"]
    assert matrix["cols"] == [0, 1]
    assert matrix["cells"]["fig8|0"]["status"] == "done"
    assert matrix["cells"]["fig8|0"]["metrics"] == {"accuracy": 0.9}
    assert matrix["cells"]["fig8|1"]["error"] == "boom"
    assert "fig9|1" not in matrix["cells"]


def test_campaign_detail_refuses_plain_run_records(runs_dir):
    path = write_run_record(RunRecord(name="fig7"), runs_dir)
    data = DashboardData(runs_dir=runs_dir)
    assert data.campaign_detail(path.name) is None
    assert data.campaign_detail("../escape.json") is None


@pytest.fixture()
def server(runs_dir):
    instance = build_dashboard_server(port=0, runs_dir=runs_dir)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()


def _get(server, path):
    try:
        with urllib.request.urlopen(f"{server.url}{path}") as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_api_campaigns_routes(server, runs_dir):
    path = write_campaign_record(_record(), runs_dir)
    status, body = _get(server, "/api/campaigns?last=10")
    assert status == 200
    assert [row["name"] for row in body["campaigns"]] == ["dash"]

    status, body = _get(server, f"/api/campaigns/{path.name}")
    assert status == 200
    assert body["name"] == "dash"
    assert body["matrix"]["rows"] == ["fig8", "fig9"]

    status, body = _get(server, "/api/campaigns/nope.json")
    assert status == 404
    assert body["error"]["type"] == "NotFound"


def test_index_page_mentions_campaigns(server):
    with urllib.request.urlopen(f"{server.url}/") as response:
        html = response.read().decode()
    assert "campaigns" in html
    assert "/api/campaigns" in html
