"""Dashboard data layer: runs index, bench trajectory/diff, journal tail."""

from __future__ import annotations

import json

import pytest

from repro.dashboard.data import DashboardData
from repro.runtime.records import RunRecord, write_run_record

STAGE_NAMES = (
    "simulator.sequence",
    "process.drai_sequence",
    "sample.end_to_end",
    "train.epoch",
    "serve.engine",
    "serve.fleet",
    "attack.placement_scoring",
)


def bench_payload(sha="abc1234", preset="tiny", base_s=0.5, version=4):
    """A minimal loadable bench result (not full-schema, loader-valid)."""
    stages = {
        name: {
            "repeats": 2,
            "min_s": base_s * (index + 1),
            "mean_s": base_s * (index + 1) * 1.1,
            "max_s": base_s * (index + 1) * 1.2,
        }
        for index, name in enumerate(STAGE_NAMES)
    }
    payload = {
        "schema_version": version,
        "generated_utc": "2026-08-08T00:00:00+00:00",
        "preset": {"name": preset, "num_frames": 6},
        "machine": {"cpu_count": 4},
        "stages": stages,
        "throughput": {"samples_per_s": 1.0 / base_s},
        "speedup": {"simulate": 3.0, "drai": 2.0, "end_to_end": 2.5},
        "fleet": {"replicas": 3, "scaling": 2.2},
    }
    if version >= 4:
        payload["meta"] = {
            "git_sha": sha,
            "date": "2026-08-08",
            "cpu_count": 4,
            "hostname": "host",
            "preset": preset,
        }
    return payload


def _record(name, timestamp, status="ok"):
    return RunRecord(
        name=name,
        timestamp=timestamp,
        outcome={"status": status},
        git_revision="abc1234",
    )


@pytest.fixture()
def populated(tmp_path):
    runs_dir = tmp_path / "runs"
    runs_dir.mkdir()
    write_run_record(_record("fig7", "20260101T000000"), runs_dir)
    write_run_record(_record("fig8", "20260102T000000", "failed"), runs_dir)
    bench_dir = tmp_path / "bench"
    bench_dir.mkdir()
    (bench_dir / "BENCH_2026-08-01.json").write_text(
        json.dumps(bench_payload(sha="old0000", base_s=1.0))
    )
    (bench_dir / "BENCH_2026-08-08.json").write_text(
        json.dumps(bench_payload(sha="new0000", base_s=0.5))
    )
    journal = tmp_path / "sweep-journal.jsonl"
    journal.write_text(
        json.dumps({"key": "fig7", "status": "done", "attempts": 1}) + "\n"
        + json.dumps({"key": "fig8", "status": "failed", "attempts": 2}) + "\n"
    )
    return DashboardData(
        runs_dir=runs_dir, bench_dir=bench_dir, journal_path=journal
    )


def test_index_summarizes_everything(populated):
    index = populated.index()
    assert index["run_count"] == 2
    assert index["latest_run"]["name"] == "fig8"
    assert index["bench_files"] == [
        "BENCH_2026-08-01.json", "BENCH_2026-08-08.json",
    ]
    assert index["server_url"] is None


def test_runs_filtering(populated):
    assert [r["name"] for r in populated.runs()] == ["fig7", "fig8"]
    assert [r["name"] for r in populated.runs(status="failed")] == ["fig8"]
    assert [r["name"] for r in populated.runs(name="fig7")] == ["fig7"]
    assert [r["name"] for r in populated.runs(last=1)] == ["fig8"]


def test_run_detail_and_traversal_rejection(populated):
    listing = populated.runs()
    detail = populated.run_detail(listing[0]["file"])
    assert detail["name"] == "fig7"
    assert populated.run_detail("nope.json") is None
    assert populated.run_detail("../secrets.json") is None
    assert populated.run_detail("sub/dir.json") is None
    assert populated.run_detail(".hidden.json") is None
    assert populated.run_detail("not-json.txt") is None


def test_bench_trajectory_points(populated):
    trajectory = populated.bench_trajectory()
    assert trajectory["skipped"] == []
    points = trajectory["points"]
    assert [p["meta"]["git_sha"] for p in points] == ["old0000", "new0000"]
    assert points[0]["stages_min_s"]["simulator.sequence"] == 1.0
    assert points[1]["samples_per_s"] == pytest.approx(2.0)
    assert points[1]["fleet_scaling"] == pytest.approx(2.2)
    # Only the charted stages are projected into the point.
    assert "attack.placement_scoring" not in points[0]["stages_min_s"]


def test_bench_trajectory_tolerates_bad_files(populated):
    (populated.bench_dir / "BENCH_broken.json").write_text("{not json")
    (populated.bench_dir / "BENCH_old.json").write_text(
        json.dumps({"schema_version": 1})
    )
    trajectory = populated.bench_trajectory()
    assert len(trajectory["points"]) == 2
    assert {entry["file"] for entry in trajectory["skipped"]} == {
        "BENCH_broken.json", "BENCH_old.json",
    }


def test_bench_trajectory_loads_v3_files(populated):
    (populated.bench_dir / "BENCH_2026-07-01.json").write_text(
        json.dumps(bench_payload(base_s=2.0, version=3))
    )
    points = populated.bench_trajectory()["points"]
    legacy = [p for p in points if p["file"] == "BENCH_2026-07-01.json"][0]
    assert legacy["meta"]["git_sha"] == "unknown"
    assert legacy["meta"]["preset"] == "tiny"


def test_bench_diff(populated):
    diff = populated.bench_diff(
        "BENCH_2026-08-01.json", "BENCH_2026-08-08.json"
    )
    assert diff["a"]["meta"]["git_sha"] == "old0000"
    assert diff["b"]["meta"]["git_sha"] == "new0000"
    entry = diff["stages"]["simulator.sequence"]
    assert entry["a_min_s"] == 1.0 and entry["b_min_s"] == 0.5
    assert entry["delta_s"] == pytest.approx(-0.5)
    assert entry["ratio"] == pytest.approx(0.5)
    assert diff["only_in_a"] == [] and diff["only_in_b"] == []


def test_bench_diff_rejects_bad_filenames(populated):
    with pytest.raises(ValueError, match="no such bench file"):
        populated.bench_diff("BENCH_2026-08-01.json", "BENCH_missing.json")
    with pytest.raises(ValueError, match="bare filenames"):
        populated.bench_diff("../BENCH_2026-08-01.json", "BENCH_2026-08-08.json")


def test_journal_tail_and_offsets(populated):
    tail = populated.journal_tail()
    assert [e["key"] for e in tail["entries"]] == ["fig7", "fig8"]
    assert tail["done"] == 1 and tail["failed"] == 1
    assert tail["next_offset"] == 2
    # Poll again from next_offset: nothing new.
    again = populated.journal_tail(tail["next_offset"])
    assert again["entries"] == [] and again["next_offset"] == 2
    # New line appended -> only the new entry comes back.
    with open(populated.journal_path, "a") as handle:
        handle.write(json.dumps({"key": "fig9", "status": "done"}) + "\n")
    fresh = populated.journal_tail(tail["next_offset"])
    assert [e["key"] for e in fresh["entries"]] == ["fig9"]
    assert fresh["next_offset"] == 3


def test_journal_tail_stops_at_torn_line(populated):
    with open(populated.journal_path, "a") as handle:
        handle.write('{"key": "fig9", "status"')  # writer mid-append
    tail = populated.journal_tail()
    assert [e["key"] for e in tail["entries"]] == ["fig7", "fig8"]
    # The torn line is not consumed; the next poll retries it.
    assert tail["next_offset"] == 2


def test_journal_tail_missing_file(tmp_path):
    data = DashboardData(journal_path=tmp_path / "absent.jsonl")
    tail = data.journal_tail()
    assert tail == {"entries": [], "next_offset": 0, "exists": False}
    assert DashboardData().journal_tail()["exists"] is False


def test_fleet_metrics_requires_configuration(populated):
    with pytest.raises(ConnectionError, match="no --server-url"):
        populated.fleet_metrics()


def test_fleet_metrics_unreachable_server(tmp_path):
    data = DashboardData(server_url="http://127.0.0.1:1")
    with pytest.raises(ConnectionError, match="fleet metrics fetch"):
        data.fleet_metrics(timeout_s=0.5)
