"""Dashboard HTTP app: routes, query handling, error mapping, CLI wiring."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.dashboard.server import build_dashboard_server
from repro.runtime.records import RunRecord, write_run_record

from .test_data import bench_payload


def _get(url, path):
    try:
        with urllib.request.urlopen(f"{url}{path}", timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


@pytest.fixture()
def dashboard(tmp_path):
    runs_dir = tmp_path / "runs"
    runs_dir.mkdir()
    write_run_record(
        RunRecord(name="fig7", timestamp="20260101T000000",
                  outcome={"status": "ok"}),
        runs_dir,
    )
    bench_dir = tmp_path / "bench"
    bench_dir.mkdir()
    (bench_dir / "BENCH_a.json").write_text(
        json.dumps(bench_payload(sha="aaa", base_s=1.0))
    )
    (bench_dir / "BENCH_b.json").write_text(
        json.dumps(bench_payload(sha="bbb", base_s=0.5))
    )
    journal = tmp_path / "journal.jsonl"
    journal.write_text(json.dumps({"key": "fig7", "status": "done"}) + "\n")
    server = build_dashboard_server(
        port=0, runs_dir=runs_dir, bench_dir=bench_dir, journal_path=journal
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with server:
            yield server
            server.shutdown()
    finally:
        thread.join(timeout=5)


def test_landing_page_is_html(dashboard):
    with urllib.request.urlopen(dashboard.url + "/", timeout=10) as response:
        assert response.status == 200
        assert "text/html" in response.headers["Content-Type"]
        assert b"repro dashboard" in response.read()


def test_api_index(dashboard):
    status, body = _get(dashboard.url, "/api/index")
    assert status == 200
    assert body["run_count"] == 1
    assert body["bench_files"] == ["BENCH_a.json", "BENCH_b.json"]


def test_api_runs_listing_and_detail(dashboard):
    status, body = _get(dashboard.url, "/api/runs?last=5")
    assert status == 200
    assert [r["name"] for r in body["runs"]] == ["fig7"]
    status, detail = _get(dashboard.url, f"/api/runs/{body['runs'][0]['file']}")
    assert status == 200
    assert detail["name"] == "fig7"
    status, error = _get(dashboard.url, "/api/runs/absent.json")
    assert status == 404
    assert error["error"]["type"] == "NotFound"


def test_api_runs_rejects_bad_query(dashboard):
    status, body = _get(dashboard.url, "/api/runs?last=banana")
    assert status == 400
    assert body["error"]["type"] == "ValidationError"
    status, body = _get(dashboard.url, "/api/runs?last=-1")
    assert status == 400


def test_api_bench_trajectory(dashboard):
    status, body = _get(dashboard.url, "/api/bench/trajectory")
    assert status == 200
    assert [p["meta"]["git_sha"] for p in body["points"]] == ["aaa", "bbb"]


def test_api_bench_diff(dashboard):
    status, body = _get(
        dashboard.url, "/api/bench/diff?a=BENCH_a.json&b=BENCH_b.json"
    )
    assert status == 200
    assert body["stages"]["train.epoch"]["ratio"] == pytest.approx(0.5)
    status, body = _get(dashboard.url, "/api/bench/diff?a=BENCH_a.json")
    assert status == 400
    status, body = _get(
        dashboard.url, "/api/bench/diff?a=BENCH_a.json&b=missing.json"
    )
    assert status == 400


def test_api_journal(dashboard):
    status, body = _get(dashboard.url, "/api/journal")
    assert status == 200
    assert body["done"] == 1 and body["next_offset"] == 1
    status, body = _get(dashboard.url, "/api/journal?offset=1")
    assert status == 200
    assert body["entries"] == []


def test_api_fleet_without_server_is_503(dashboard):
    status, body = _get(dashboard.url, "/api/fleet")
    assert status == 503
    assert body["error"]["type"] == "FleetUnavailable"


def test_unknown_route_is_404(dashboard):
    status, body = _get(dashboard.url, "/api/unknown")
    assert status == 404
    assert body["error"]["type"] == "NotFound"


class _StubMetricsHandler(BaseHTTPRequestHandler):
    def log_message(self, format, *args):  # noqa: A002
        pass

    def do_GET(self):  # noqa: N802
        body = json.dumps(
            {"serve.predictions_total": {"type": "counter", "value": 7}}
        ).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def test_api_fleet_proxies_live_metrics(tmp_path):
    stub = ThreadingHTTPServer(("127.0.0.1", 0), _StubMetricsHandler)
    stub_thread = threading.Thread(target=stub.serve_forever, daemon=True)
    stub_thread.start()
    server = build_dashboard_server(
        port=0,
        runs_dir=tmp_path,
        bench_dir=tmp_path,
        server_url=f"http://127.0.0.1:{stub.server_address[1]}",
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        status, body = _get(server.url, "/api/fleet")
        assert status == 200
        assert body["metrics"]["serve.predictions_total"]["value"] == 7
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        stub.shutdown()
        stub.server_close()
        stub_thread.join(timeout=5)


def test_cli_registers_dashboard_verb():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args([
        "dashboard", "--port", "0", "--runs-dir", "runs",
        "--bench-dir", ".", "--server-url", "http://127.0.0.1:8077",
    ])
    assert args.command == "dashboard"
    assert args.port == 0
    assert args.server_url == "http://127.0.0.1:8077"
