"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_every_paper_experiment_registered():
    expected = {
        "fig3", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "table1", "sec6d", "sec7",
        "spectral",
    }
    assert set(EXPERIMENTS) == expected


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig99"])


def test_parser_defaults():
    args = build_parser().parse_args(["run", "fig7"])
    assert args.preset == "fast"
    assert args.seed == 0
    assert not args.no_cache


def test_run_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def _micro_preset():
    from repro.eval import FAST

    from .conftest import make_micro_generation_config

    return FAST.scaled(
        generation=make_micro_generation_config(),
        num_frames=8,
        samples_per_class=4,
        attacker_samples_per_class=4,
        epochs=1,
        repetitions=1,
        shap_samples=24,
        poisoned_frame_counts=(2, 4),
    )


def test_run_executes_experiment_end_to_end(capsys, monkeypatch, tmp_path):
    """`repro run sec6d` at a micro preset exercises the full CLI path."""
    import repro.cli as cli

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    monkeypatch.setattr(cli, "preset_by_name", lambda name: _micro_preset())
    assert cli.main(["run", "sec6d", "--preset", "fast"]) == 0
    out = capsys.readouterr().out
    assert "sec6d" in out
    assert "IF simulation" in out
    assert "done in" in out
    # Every run leaves a run record behind.
    records = list((tmp_path / "runs").glob("*-sec6d.json"))
    assert len(records) == 1


def test_run_exports_trace_metrics_and_record(capsys, monkeypatch, tmp_path):
    """--trace/--metrics write valid artifacts; `stats` prints the record.

    fig7 generates a dataset (through the disk cache) and trains the victim
    model, so the trace must contain nested spans from the simulator,
    dataset, and trainer layers, and the metrics snapshot the cache and
    trainer instruments.
    """
    import repro.cli as cli

    runs_dir = tmp_path / "runs"
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.jsonl"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RUNS_DIR", str(runs_dir))
    monkeypatch.setattr(cli, "preset_by_name", lambda name: _micro_preset())
    assert cli.main([
        "run", "fig7", "--preset", "fast",
        "--trace", str(trace_path), "--metrics", str(metrics_path),
    ]) == 0
    capsys.readouterr()

    # --- Chrome trace: spans from every pipeline layer, some nested.
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    names = {event["name"] for event in events}
    assert "simulate.sequence" in names  # simulator layer (batched path)
    assert "stage.dataset" in names  # dataset layer
    assert "train.fit" in names and "train.epoch" in names  # trainer layer
    assert "experiment.fig7" in names  # runner layer
    spans_by_name = {}
    for event in events:
        spans_by_name.setdefault(event["name"], event)
    # Nesting: a simulate span lies inside the dataset stage span.
    outer = spans_by_name["stage.dataset"]
    inner = spans_by_name["simulate.sequence"]
    assert outer["ts"] <= inner["ts"] <= outer["ts"] + outer["dur"]

    # --- Metrics JSONL: cache + trainer instruments present.
    entries = {
        entry["name"]: entry
        for entry in map(json.loads, metrics_path.read_text().splitlines())
    }
    assert entries["cache.miss"]["value"] == 1
    assert entries["trainer.samples_processed"]["value"] > 0
    assert entries["trainer.samples_per_s"]["type"] == "gauge"
    assert entries["trainer.grad_norm"]["type"] == "histogram"
    assert entries["trainer.grad_norm"]["count"] > 0

    # --- Run record: written, loadable, and surfaced by `repro stats`.
    from repro.runtime.records import latest_run_record_path, load_run_record

    record = load_run_record(latest_run_record_path(runs_dir))
    assert record.name == "fig7"
    assert record.config["preset"] == "fast"
    assert record.outcome["status"] == "ok"
    assert "train.fit" in record.spans
    assert "cache.miss" in record.metrics
    assert cli.main(["stats"]) == 0
    out = capsys.readouterr().out
    assert "run record: fig7" in out
    assert "ok (1/1 experiments ok)" in out


def test_run_failure_still_writes_record(capsys, monkeypatch, tmp_path):
    import repro.cli as cli

    runs_dir = tmp_path / "runs"
    monkeypatch.setenv("REPRO_RUNS_DIR", str(runs_dir))
    monkeypatch.setattr(cli, "preset_by_name", lambda name: _micro_preset())
    monkeypatch.setitem(
        cli.EXPERIMENTS, "fig7",
        ("doomed", lambda ctx: (_ for _ in ()).throw(ValueError("boom"))),
    )
    assert cli.main(["run", "fig7"]) == 1
    from repro.runtime.records import latest_run_record_path, load_run_record

    record = load_run_record(latest_run_record_path(runs_dir))
    assert record.outcome["status"] == "failed"
    assert "ValueError" in record.outcome["error"]


def test_stats_without_records_errors(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "empty"))
    assert main(["stats"]) == 1


def test_parser_accepts_observability_flags():
    args = build_parser().parse_args([
        "--log-timestamps", "run", "fig7",
        "--trace", "t.json", "--metrics", "m.jsonl", "--runs-dir", "r",
    ])
    assert args.log_timestamps
    assert args.trace == "t.json"
    assert args.metrics == "m.jsonl"
    assert args.runs_dir == "r"
