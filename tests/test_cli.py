"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_every_paper_experiment_registered():
    expected = {
        "fig3", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "table1", "sec6d", "sec7",
        "spectral",
    }
    assert set(EXPERIMENTS) == expected


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig99"])


def test_parser_defaults():
    args = build_parser().parse_args(["run", "fig7"])
    assert args.preset == "fast"
    assert args.seed == 0
    assert not args.no_cache


def test_run_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_executes_experiment_end_to_end(capsys, monkeypatch, tmp_path):
    """`repro run sec6d` at a micro preset exercises the full CLI path."""
    import repro.cli as cli
    from repro.eval import FAST

    from .conftest import make_micro_generation_config

    micro = FAST.scaled(
        generation=make_micro_generation_config(),
        num_frames=8,
        samples_per_class=4,
        attacker_samples_per_class=4,
        epochs=1,
        repetitions=1,
        shap_samples=24,
        poisoned_frame_counts=(2, 4),
    )
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setattr(cli, "preset_by_name", lambda name: micro)
    assert cli.main(["run", "sec6d", "--preset", "fast"]) == 0
    out = capsys.readouterr().out
    assert "sec6d" in out
    assert "IF simulation" in out
    assert "done in" in out
