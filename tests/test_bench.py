"""Benchmark suite: schema, determinism of the workload, CLI integration."""

import json

import pytest

from repro.bench import (
    BENCH_PRESETS,
    BENCH_SCHEMA_VERSION,
    default_output_path,
    format_bench_result,
    load_bench_result,
    run_bench,
    validate_bench_result,
    write_bench_result,
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_bench("tiny")


def test_presets_are_ordered_by_size():
    assert set(BENCH_PRESETS) == {"tiny", "small", "medium"}
    frames = [BENCH_PRESETS[name].num_frames for name in ("tiny", "small", "medium")]
    assert frames == sorted(frames)
    assert BENCH_PRESETS["medium"].num_frames == 32  # the paper's scale


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown bench preset"):
        run_bench("huge")


def test_tiny_result_passes_schema(tiny_result):
    validate_bench_result(tiny_result)
    assert tiny_result["schema_version"] == BENCH_SCHEMA_VERSION
    assert tiny_result["preset"]["name"] == "tiny"
    # The span breakdown must include the batched simulator path.
    assert "simulate.sequence" in tiny_result["spans"]


def test_meta_block_labels_the_result(tiny_result):
    meta = tiny_result["meta"]
    assert meta["preset"] == "tiny"
    assert meta["cpu_count"] >= 1
    assert len(meta["date"]) == 10  # YYYY-MM-DD
    assert meta["git_sha"] and meta["hostname"]
    broken = {k: v for k, v in tiny_result.items() if k != "meta"}
    with pytest.raises(ValueError, match="meta"):
        validate_bench_result(broken)
    with pytest.raises(ValueError, match="git_sha"):
        validate_bench_result({**tiny_result, "meta": {}})


def test_loader_accepts_current_and_legacy_files(tiny_result, tmp_path):
    current = tmp_path / "v4.json"
    write_bench_result(tiny_result, current)
    assert load_bench_result(current)["meta"] == tiny_result["meta"]

    legacy = {k: v for k, v in tiny_result.items() if k != "meta"}
    legacy["schema_version"] = 3
    v3_path = tmp_path / "v3.json"
    v3_path.write_text(json.dumps(legacy))
    loaded = load_bench_result(v3_path)
    # The loader synthesizes meta from what v3 files do carry.
    assert loaded["schema_version"] == 3
    assert loaded["meta"]["preset"] == "tiny"
    assert loaded["meta"]["git_sha"] == "unknown"
    assert loaded["meta"]["date"] == tiny_result["generated_utc"][:10]
    assert loaded["meta"]["cpu_count"] == tiny_result["machine"]["cpu_count"]

    # v2 (pre-fleet, pre-meta) also loads — the repo's committed
    # BENCH_2026-08-05.json is one — with the same synthesized meta.
    v2 = {k: v for k, v in legacy.items() if k != "fleet"}
    v2["schema_version"] = 2
    v2_path = tmp_path / "v2.json"
    v2_path.write_text(json.dumps(v2))
    loaded_v2 = load_bench_result(v2_path)
    assert loaded_v2["schema_version"] == 2
    assert loaded_v2["meta"]["git_sha"] == "unknown"
    assert "fleet" not in loaded_v2

    v1_path = tmp_path / "v1.json"
    v1_path.write_text(json.dumps({**v2, "schema_version": 1}))
    with pytest.raises(ValueError, match="schema version"):
        load_bench_result(v1_path)


def test_speedups_are_positive(tiny_result):
    for key in ("simulate", "drai", "end_to_end"):
        assert tiny_result["speedup"][key] > 0.0


def test_fleet_scaling_block(tiny_result):
    fleet = tiny_result["fleet"]
    assert fleet["replicas"] == 3
    assert fleet["rps_single"] > 0.0 and fleet["rps_fleet"] > 0.0
    assert fleet["scaling"] == pytest.approx(
        fleet["rps_fleet"] / fleet["rps_single"]
    )
    for stage in ("serve.fleet_single", "serve.fleet"):
        assert tiny_result["stages"][stage]["requests"] == 24
    broken = {key: value for key, value in tiny_result.items() if key != "fleet"}
    with pytest.raises(ValueError, match="fleet"):
        validate_bench_result(broken)


def test_validate_rejects_missing_stage(tiny_result):
    broken = {**tiny_result, "stages": dict(tiny_result["stages"])}
    del broken["stages"]["train.epoch"]
    with pytest.raises(ValueError, match="train.epoch"):
        validate_bench_result(broken)


def test_validate_rejects_wrong_schema_version(tiny_result):
    with pytest.raises(ValueError, match="schema_version"):
        validate_bench_result({**tiny_result, "schema_version": 999})


def test_write_round_trips_json(tiny_result, tmp_path):
    path = write_bench_result(tiny_result, tmp_path / "bench.json")
    loaded = json.loads(path.read_text())
    validate_bench_result(loaded)
    assert loaded["preset"] == tiny_result["preset"]


def test_default_output_path_embeds_utc_date(tiny_result):
    path = default_output_path(tiny_result)
    date = tiny_result["generated_utc"][:10]
    assert path.name == f"BENCH_{date}.json"


def test_format_is_human_readable(tiny_result):
    text = format_bench_result(tiny_result)
    assert "speedup vs per-frame reference" in text
    assert "chirps/s" in text
    assert "train.epoch" in text


def test_cli_bench_subcommand(tmp_path, capsys):
    import repro.cli as cli

    out = tmp_path / "bench.json"
    assert cli.main(["-q", "bench", "--preset", "tiny", "--output", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "speedup vs per-frame reference" in printed
    validate_bench_result(json.loads(out.read_text()))
