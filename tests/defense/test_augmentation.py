"""Tests for the correct-label augmentation defense."""

import numpy as np
import pytest

from repro.attack import TRIGGER_2X2
from repro.datasets import HeatmapDataset, activity_label
from repro.defense import (
    AugmentationConfig,
    augment_training_set,
    build_augmentation_set,
)


def test_config_validation():
    with pytest.raises(ValueError):
        AugmentationConfig(fraction=0.0)
    with pytest.raises(ValueError):
        AugmentationConfig(attachment_names=("chest", "elbow"))


def _clean_train(n_per_class=4, num_frames=8):
    xs, ys = [], []
    for c in range(6):
        for _ in range(n_per_class):
            xs.append(np.zeros((num_frames, 16, 16), dtype=np.float32))
            ys.append(c)
    return HeatmapDataset(np.stack(xs), np.asarray(ys))


def test_augmentation_set_labels_stay_honest(micro_generator):
    clean = _clean_train()
    augmented = build_augmentation_set(
        micro_generator, TRIGGER_2X2, clean,
        AugmentationConfig(fraction=0.25),
        activities=("push", "pull"),
    )
    # fraction 0.25 of 4 samples -> 1 per class, 2 activities.
    assert len(augmented) == 2
    labels = {activity_label("push"), activity_label("pull")}
    assert set(augmented.y.tolist()) == labels
    assert all(meta.has_trigger for meta in augmented.meta)
    assert all(meta.trigger_attachment for meta in augmented.meta)


def test_augmentation_covers_multiple_attachments(micro_generator):
    clean = _clean_train(n_per_class=8)
    augmented = build_augmentation_set(
        micro_generator, TRIGGER_2X2, clean,
        AugmentationConfig(fraction=0.5),
        activities=("push",),
    )
    attachments = {meta.trigger_attachment for meta in augmented.meta}
    assert len(attachments) >= 2


def test_augment_training_set_merges(micro_generator, rng):
    clean = _clean_train()
    augmented = build_augmentation_set(
        micro_generator, TRIGGER_2X2, clean,
        AugmentationConfig(fraction=0.25),
        activities=("push",),
    )
    combined = augment_training_set(clean, augmented, rng)
    assert len(combined) == len(clean) + len(augmented)
    assert sum(meta.has_trigger for meta in combined.meta) == len(augmented)
