"""Tests for the spectral-signature poisoning defense."""

import numpy as np
import pytest

from repro.datasets import HeatmapDataset
from repro.defense import (
    SpectralConfig,
    SpectralDefense,
    sample_representations,
    spectral_scores,
)


def test_config_validation():
    with pytest.raises(ValueError):
        SpectralConfig(removal_fraction=0.0)
    with pytest.raises(ValueError):
        SpectralConfig(removal_fraction=1.0)
    with pytest.raises(ValueError):
        SpectralConfig(min_class_size=1)


def test_spectral_scores_flag_planted_outliers(rng):
    """A sub-population shifted along one direction gets the top scores."""
    clean = rng.normal(size=(40, 16))
    direction = np.zeros(16)
    direction[3] = 6.0
    poisoned = rng.normal(size=(10, 16)) + direction
    scores = spectral_scores(np.vstack([clean, poisoned]))
    top10 = np.argsort(scores)[::-1][:10]
    assert (top10 >= 40).mean() >= 0.8  # poisoned indices dominate the top


def test_spectral_scores_validation():
    with pytest.raises(ValueError):
        spectral_scores(np.zeros((1, 4)))
    with pytest.raises(ValueError):
        spectral_scores(np.zeros(4))


def test_sample_representations_shape(trained_micro_model, micro_dataset):
    reps = sample_representations(trained_micro_model, micro_dataset.x[:5])
    assert reps.shape == (5, trained_micro_model.config.lstm_hidden)


def test_analyze_respects_min_class_size(trained_micro_model, micro_dataset):
    defense = SpectralDefense(
        trained_micro_model, SpectralConfig(removal_fraction=0.3, min_class_size=50)
    )
    report = defense.analyze(micro_dataset)
    assert report.num_removed == 0  # every class too small to touch


def test_filter_removes_per_class_fraction(trained_micro_model, rng):
    # 12 samples per class in 2 classes, removal_fraction 0.25 -> 3 each.
    x = rng.random((24, 8, 16, 16)).astype(np.float32)
    y = np.array([0] * 12 + [1] * 12)
    dataset = HeatmapDataset(x, y)
    defense = SpectralDefense(
        trained_micro_model, SpectralConfig(removal_fraction=0.25, min_class_size=4)
    )
    cleaned, report = defense.filter(dataset)
    assert report.num_removed == 6
    assert len(cleaned) == 18
    # Removal is class-balanced.
    removed_labels = y[report.removed_indices]
    assert (removed_labels == 0).sum() == 3
    assert (removed_labels == 1).sum() == 3


def test_recall_metric(trained_micro_model, rng):
    x = rng.random((20, 8, 16, 16)).astype(np.float32)
    y = np.zeros(20, dtype=int)
    dataset = HeatmapDataset(x, y)
    defense = SpectralDefense(
        trained_micro_model, SpectralConfig(removal_fraction=0.2, min_class_size=4)
    )
    report = defense.analyze(dataset)
    mask = np.zeros(20, dtype=bool)
    mask[report.removed_indices] = True
    assert report.recall(mask) == 1.0
    with pytest.raises(ValueError):
        report.recall(np.zeros(20, dtype=bool))


def test_defense_catches_backdoor_signature(trained_micro_model, rng):
    """Poisoned samples (distinct bright blob) are preferentially removed
    from the target class."""
    clean = rng.random((16, 8, 16, 16)).astype(np.float32) * 0.3
    poisoned = rng.random((6, 8, 16, 16)).astype(np.float32) * 0.3
    poisoned[:, :, 4:7, 4:7] += 0.7  # the trigger signature
    x = np.concatenate([clean, poisoned])
    y = np.ones(22, dtype=int)  # all labeled as the target class
    dataset = HeatmapDataset(x, y)
    defense = SpectralDefense(
        trained_micro_model, SpectralConfig(removal_fraction=6 / 22, min_class_size=4)
    )
    report = defense.analyze(dataset)
    truth = np.zeros(22, dtype=bool)
    truth[16:] = True
    assert report.recall(truth) >= 0.5  # better than random (6/22 ~ 27%)
