"""Tests for the trigger-detection defense."""

import numpy as np
import pytest

from repro.defense import (
    DetectorConfig,
    TriggerDetector,
    canonicalize_dataset,
    canonicalize_sequence,
    estimate_subject_cell,
)
from repro.defense.detector import _binary_auc
from repro.datasets import HeatmapDataset
from repro.models import TrainingConfig


def blob_sequence(range_bin, angle_bin, shape=(4, 16, 16), value=1.0):
    sequence = np.zeros(shape, dtype=np.float32)
    sequence[:, range_bin, angle_bin] = value
    return sequence


def test_estimate_subject_cell_finds_blob():
    sequence = blob_sequence(5, 11)
    assert estimate_subject_cell(sequence) == (5, 11)


def test_estimate_subject_cell_empty_defaults_to_center():
    assert estimate_subject_cell(np.zeros((4, 16, 16))) == (8, 8)


def test_estimate_subject_cell_validates_rank():
    with pytest.raises(ValueError):
        estimate_subject_cell(np.zeros((16, 16)))


def test_canonicalize_centers_blob():
    sequence = blob_sequence(3, 12)
    centered = canonicalize_sequence(sequence)
    assert estimate_subject_cell(centered) == (8, 8)


def test_canonicalize_position_invariance():
    a = canonicalize_sequence(blob_sequence(3, 4))
    b = canonicalize_sequence(blob_sequence(10, 13))
    assert np.allclose(a, b)


def test_canonicalize_dataset_batch():
    x = np.stack([blob_sequence(3, 4), blob_sequence(9, 9)])
    out = canonicalize_dataset(x)
    assert out.shape == x.shape
    assert np.allclose(out[0], out[1])


def test_binary_auc_perfect_and_random():
    scores = np.array([0.1, 0.2, 0.8, 0.9])
    labels = np.array([0, 0, 1, 1])
    assert _binary_auc(scores, labels) == pytest.approx(1.0)
    assert _binary_auc(1 - scores, labels) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        _binary_auc(scores, np.zeros(4, dtype=int))


def test_binary_auc_handles_ties():
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    labels = np.array([0, 1, 0, 1])
    assert _binary_auc(scores, labels) == pytest.approx(0.5)


def _separable_detection_data(n=10):
    """Triggered samples have a persistent bright cell next to the blob."""
    rng = np.random.default_rng(0)
    clean, triggered = [], []
    for _ in range(n):
        r, a = int(rng.integers(3, 12)), int(rng.integers(3, 12))
        base = blob_sequence(r, a) + rng.random((4, 16, 16)).astype(np.float32) * 0.1
        clean.append(base)
        poisoned = base.copy()
        poisoned[:, r + 2, a] += 0.9  # reflector return near the body
        triggered.append(poisoned)
    zeros = np.zeros(n, dtype=int)
    return (
        HeatmapDataset(np.stack(clean), zeros),
        HeatmapDataset(np.stack(triggered), zeros),
    )


def test_detector_learns_synthetic_trigger():
    clean, triggered = _separable_detection_data(12)
    detector = TriggerDetector(
        (16, 16), 4,
        DetectorConfig(training=TrainingConfig(epochs=8, validation_fraction=0.0,
                                               learning_rate=3e-3, seed=0)),
        np.random.default_rng(0),
    )
    detector.fit(clean, triggered)
    holdout_clean, holdout_triggered = _separable_detection_data(6)
    report = detector.evaluate(holdout_clean, holdout_triggered)
    assert report.auc > 0.8
    assert report.accuracy > 0.6
    assert "AUC" in str(report)


def test_detector_scores_shape():
    clean, triggered = _separable_detection_data(4)
    detector = TriggerDetector(
        (16, 16), 4,
        DetectorConfig(training=TrainingConfig(epochs=1, validation_fraction=0.0)),
        np.random.default_rng(0),
    )
    detector.fit(clean, triggered)
    scores = detector.scores(clean.x)
    assert scores.shape == (4,)
    assert ((scores >= 0) & (scores <= 1)).all()
    decisions = detector.predict(clean.x)
    assert decisions.dtype == bool


def test_detector_balances_imbalanced_training():
    """With 5x more clean than triggered data the detector must still
    learn the trigger class rather than collapse to 'always clean'."""
    clean, triggered = _separable_detection_data(15)
    few_triggered = triggered.subset(np.arange(3))
    detector = TriggerDetector(
        (16, 16), 4,
        DetectorConfig(training=TrainingConfig(epochs=8, validation_fraction=0.0,
                                               learning_rate=3e-3, seed=0)),
        np.random.default_rng(0),
    )
    detector.fit(clean, few_triggered)
    holdout_clean, holdout_triggered = _separable_detection_data(6)
    report = detector.evaluate(holdout_clean, holdout_triggered)
    assert report.true_positive_rate > 0.3
