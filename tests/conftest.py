"""Shared fixtures: micro-scale radar/dataset/model configurations.

Tests run against deliberately tiny configurations (8 frames, 16x16
heatmaps, a single position) so the whole suite stays fast while still
exercising the real simulation -> heatmap -> model -> attack pipeline.
Session-scoped fixtures share the expensive artifacts (datasets, a trained
micro model) across test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import GenerationConfig, SampleGenerator
from repro.models import CNNLSTMClassifier, ModelConfig, Trainer, TrainingConfig
from repro.radar import AntennaArray, ChirpConfig, HeatmapConfig, RadarConfig
from repro.runtime.telemetry import metrics, telemetry


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Point the dataset cache and run-record dir at per-test temp dirs."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "repro-runs"))


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Disabled tracing and empty metrics for every test."""
    telemetry().disable()
    telemetry().reset()
    metrics().reset()
    yield
    telemetry().disable()
    telemetry().reset()
    metrics().reset()


def make_micro_generation_config(
    num_frames: int = 8,
    environment_objects: int = 0,
    snr_db: float = 30.0,
) -> GenerationConfig:
    """A minimal generation pipeline: 16x16 heatmaps, one position."""
    return GenerationConfig(
        num_frames=num_frames,
        radar=RadarConfig(
            chirp=ChirpConfig(num_adc_samples=64, num_chirps=8),
            antennas=AntennaArray(num_tx=2, num_rx=4),
        ),
        heatmap=HeatmapConfig(
            range_bin_start=16, range_bin_stop=32, num_angle_bins=16
        ),
        distances_m=(1.0,),
        angles_deg=(0.0,),
        snr_db=snr_db,
        environment_objects=environment_objects,
        participants=(1.0,),
    )


MICRO_MODEL_CONFIG = ModelConfig(
    frame_shape=(16, 16),
    conv_channels=(4, 8),
    feature_dim=12,
    lstm_hidden=16,
    dropout=0.0,
)


@pytest.fixture(scope="session")
def micro_generation_config() -> GenerationConfig:
    return make_micro_generation_config()


@pytest.fixture(scope="session")
def micro_generator(micro_generation_config) -> SampleGenerator:
    return SampleGenerator(micro_generation_config, seed=0)


@pytest.fixture(scope="session")
def micro_dataset(micro_generation_config):
    """18 samples (3 per class) through the real simulator."""
    generator = SampleGenerator(micro_generation_config, seed=11)
    return generator.generate_dataset(samples_per_class=3)


@pytest.fixture(scope="session")
def micro_model_config() -> ModelConfig:
    return MICRO_MODEL_CONFIG


@pytest.fixture(scope="session")
def trained_micro_model(micro_dataset, micro_model_config) -> CNNLSTMClassifier:
    """A briefly-trained CNN-LSTM shared by XAI/attack tests."""
    model = CNNLSTMClassifier(micro_model_config, np.random.default_rng(3))
    trainer = Trainer(
        TrainingConfig(epochs=4, batch_size=9, learning_rate=3e-3,
                       validation_fraction=0.0, seed=0)
    )
    trainer.fit(model, micro_dataset.x, micro_dataset.y)
    return model


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
