"""Last-mile coverage: small public helpers used by the harness."""

import numpy as np
import pytest

from repro.eval.reporting import summarize_matrix
from repro.geometry import occlusion_mask, planar_patch, merge_meshes
from repro.nn import Tensor, log_softmax

from .nn.test_tensor import numerical_gradient


def test_summarize_matrix():
    text = summarize_matrix(np.array([[0.0, 1.0], [2.0, 3.0]]))
    assert "shape=(2, 2)" in text
    assert "min=0.0000" in text and "max=3.0000" in text


def test_log_softmax_gradient():
    logits = Tensor(np.array([[0.3, -1.2, 2.0]]), requires_grad=True)
    weights = np.array([[0.5, -0.25, 1.5]])

    def loss_value():
        out = log_softmax(Tensor(logits.data), axis=1)
        return float((out.data * weights).sum())

    (log_softmax(logits, axis=1) * weights).sum().backward()
    numeric = numerical_gradient(loss_value, logits.data)
    assert np.abs(numeric - logits.grad).max() < 1e-7


def test_occlusion_depth_slack_widens_survivors():
    radar = np.zeros(3)
    near = planar_patch(0.3, 0.3).translated([0.0, 1.0, 0.0])
    behind = planar_patch(0.3, 0.3).translated([0.0, 1.15, 0.0])
    scene = merge_meshes([near, behind])
    tight = occlusion_mask(scene, radar, depth_slack_m=0.05)
    loose = occlusion_mask(scene, radar, depth_slack_m=0.5)
    # With generous slack the slightly-behind patch survives too.
    assert loose.sum() > tight.sum()


def test_npz_suffix_handling(tmp_path):
    from repro.nn import Linear, Sequential, load_checkpoint, save_checkpoint

    model = Sequential(Linear(2, 2, np.random.default_rng(0)))
    # numpy appends .npz when missing; both spellings must round-trip.
    save_checkpoint(model, tmp_path / "a.npz")
    load_checkpoint(model, tmp_path / "a.npz")
    save_checkpoint(model, tmp_path / "b")
    load_checkpoint(model, tmp_path / "b.npz")


def test_shap_config_defaults_are_sane():
    from repro.xai import ShapConfig

    config = ShapConfig()
    assert config.num_samples >= 8
    assert config.baseline in ("zeros", "mean")
