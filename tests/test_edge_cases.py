"""Cross-cutting edge cases not covered by the per-module suites."""

import numpy as np
import pytest

from repro.datasets import GenerationConfig, HeatmapDataset, SampleGenerator
from repro.geometry import TriangleMesh, planar_patch, uv_sphere
from repro.models import CNNLSTMClassifier, ModelConfig
from repro.nn import Tensor, conv2d, max_pool2d
from repro.radar import (
    AntennaArray,
    ChirpConfig,
    FmcwRadarSimulator,
    RadarConfig,
)

from .conftest import make_micro_generation_config


# ----------------------------------------------------------------------
# nn
# ----------------------------------------------------------------------
def test_conv2d_stride_gradient(rng):
    from .nn.test_tensor import numerical_gradient

    x = Tensor(rng.normal(size=(1, 1, 6, 6)), requires_grad=True)
    w = Tensor(rng.normal(size=(2, 1, 3, 3)) * 0.3, requires_grad=True)
    target = rng.normal(size=(1, 2, 3, 3))

    def loss_value():
        out = conv2d(Tensor(x.data), Tensor(w.data), stride=2, padding=1)
        return float(((out.data - target) ** 2).sum())

    out = conv2d(x, w, stride=2, padding=1)
    ((out - Tensor(target)) ** 2.0).sum().backward()
    for leaf in (x, w):
        numeric = numerical_gradient(loss_value, leaf.data)
        assert np.abs(numeric - leaf.grad).max() < 1e-5


def test_max_pool_larger_window():
    x = Tensor(np.arange(64, dtype=float).reshape(1, 1, 8, 8))
    out = max_pool2d(x, 4)
    assert out.shape == (1, 1, 2, 2)
    assert out.data[0, 0, 1, 1] == 63.0


def test_tensor_len_and_iteration_shapes():
    x = Tensor(np.zeros((5, 3)))
    assert len(x) == 5
    assert x.size == 15
    assert x.ndim == 2


# ----------------------------------------------------------------------
# radar
# ----------------------------------------------------------------------
def test_exact_simulator_empty_scene():
    sim = FmcwRadarSimulator(
        RadarConfig(chirp=ChirpConfig(num_adc_samples=16, num_chirps=2),
                    antennas=AntennaArray(num_tx=1, num_rx=2))
    )
    empty = TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3), dtype=int))
    cube = sim.frame_cube_exact(empty)
    assert cube.shape == sim.config.cube_shape
    assert np.abs(cube).max() == 0.0


def test_simulator_single_chirp_configuration():
    sim = FmcwRadarSimulator(
        RadarConfig(chirp=ChirpConfig(num_adc_samples=32, num_chirps=1),
                    antennas=AntennaArray(num_tx=1, num_rx=2))
    )
    mesh = planar_patch(0.05, 0.05).translated([0.0, 1.0, 0.0])
    cube = sim.frame_cube(mesh)
    assert cube.shape == (32, 1, 2)
    assert np.abs(cube).max() > 0.0


def test_two_targets_two_range_peaks():
    sim = FmcwRadarSimulator(
        RadarConfig(chirp=ChirpConfig(num_adc_samples=64, num_chirps=2),
                    antennas=AntennaArray(num_tx=1, num_rx=2))
    )
    from repro.geometry import merge_meshes
    from repro.radar import range_fft

    near = planar_patch(0.05, 0.05).translated([0.0, 0.7, 0.0])
    # Offset laterally so the near patch does not occlude the far one.
    far = planar_patch(0.05, 0.05).translated([0.6, 1.9, 0.0])
    cube = sim.frame_cube(merge_meshes([near, far]))
    profile = np.abs(range_fft(cube)).sum(axis=(1, 2))
    chirp = sim.config.chirp
    near_bin, far_bin = chirp.range_bin_for(0.7), chirp.range_bin_for(1.9)
    floor = np.median(profile)
    assert profile[near_bin] > 3 * floor
    assert profile[far_bin] > 3 * floor


# ----------------------------------------------------------------------
# datasets / generation
# ----------------------------------------------------------------------
def test_generation_with_environment_objects():
    config = make_micro_generation_config(environment_objects=2)
    generator = SampleGenerator(config, seed=0)
    sample = generator.generate_sample("push", 1.0, 0.0)
    assert np.isfinite(sample).all()


def test_generation_zero_snr_is_noise_dominated():
    quiet = SampleGenerator(make_micro_generation_config(snr_db=60), seed=1)
    noisy = SampleGenerator(make_micro_generation_config(snr_db=-10), seed=1)
    a = quiet.generate_sample("push", 1.0, 0.0)
    b = noisy.generate_sample("push", 1.0, 0.0)
    # At -10 dB SNR the heatmap floor rises far above the clean floor.
    assert np.median(b) > np.median(a)


def test_dataset_single_class_subset_roundtrip(micro_dataset):
    push_only = micro_dataset.filter(lambda meta, label: label == 0)
    assert len(push_only) == 3
    assert (push_only.y == 0).all()


# ----------------------------------------------------------------------
# models
# ----------------------------------------------------------------------
def test_model_with_custom_class_count(rng):
    config = ModelConfig(frame_shape=(16, 16), num_classes=3,
                         conv_channels=(4, 8), feature_dim=8, lstm_hidden=8)
    model = CNNLSTMClassifier(config, np.random.default_rng(0))
    logits = model.predict_logits(rng.random((2, 4, 16, 16)))
    assert logits.shape == (2, 3)


def test_model_handles_non_square_frames(rng):
    config = ModelConfig(frame_shape=(16, 8), conv_channels=(4, 8),
                         feature_dim=8, lstm_hidden=8)
    model = CNNLSTMClassifier(config, np.random.default_rng(0))
    logits = model.predict_logits(rng.random((2, 4, 16, 8)))
    assert logits.shape == (2, 6)


def test_heatmap_dataset_float64_input_coerced():
    ds = HeatmapDataset(np.zeros((2, 4, 8, 8), dtype=np.float64), np.zeros(2))
    assert ds.x.dtype == np.float32
    assert ds.y.dtype == np.int64
