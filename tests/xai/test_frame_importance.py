"""Tests for top-k frame selection and importance aggregation (Fig. 3)."""

import numpy as np
import pytest

from repro.xai import FrameImportanceAnalyzer, FrameImportanceResult, ShapConfig, top_k_frames


def test_top_k_orders_by_value():
    values = np.array([0.1, 0.9, -0.3, 0.5])
    assert top_k_frames(values, 2).tolist() == [1, 3]
    assert top_k_frames(values, 4).tolist() == [1, 3, 0, 2]


def test_top_k_validation():
    with pytest.raises(ValueError):
        top_k_frames(np.zeros((2, 3)), 1)
    with pytest.raises(ValueError):
        top_k_frames(np.zeros(4), 0)
    with pytest.raises(ValueError):
        top_k_frames(np.zeros(4), 5)


def make_result():
    shap_values = np.array(
        [
            [0.1, 0.9, 0.2, 0.0],
            [0.0, 0.8, 0.3, 0.1],
            [0.5, 0.7, 0.1, 0.0],
        ]
    )
    tops = np.stack([top_k_frames(v, 2) for v in shap_values])
    return FrameImportanceResult(shap_values=shap_values, top_frames=tops, k=2)


def test_most_important_histogram():
    result = make_result()
    histogram = result.most_important_histogram()
    assert histogram.tolist() == [0, 3, 0, 0]
    assert histogram.sum() == 3


def test_mean_importance():
    result = make_result()
    assert np.allclose(result.mean_importance(), [0.2, 0.8, 0.2, 1 / 30], atol=0.05)


def test_consensus_top_k():
    result = make_result()
    consensus = result.consensus_top_k()
    assert len(consensus) == 2
    assert consensus[0] == 1  # frame 1 tops every sample


def test_analyzer_end_to_end(trained_micro_model, micro_dataset):
    analyzer = FrameImportanceAnalyzer(
        trained_micro_model, ShapConfig(num_samples=64, seed=0)
    )
    subset = micro_dataset.subset(np.arange(3))
    result = analyzer.analyze(subset.x, labels=subset.y, k=3)
    assert result.shap_values.shape == (3, micro_dataset.num_frames)
    assert result.top_frames.shape == (3, 3)
    # top frames are valid indices and unique per sample
    for row in result.top_frames:
        assert len(set(row.tolist())) == 3
        assert row.max() < micro_dataset.num_frames


def test_analyzer_method_validation(trained_micro_model):
    with pytest.raises(ValueError):
        FrameImportanceAnalyzer(trained_micro_model, method="gradient")


def test_analyzer_accepts_single_sample(trained_micro_model, micro_dataset):
    analyzer = FrameImportanceAnalyzer(
        trained_micro_model, ShapConfig(num_samples=32, seed=0), method="permutation"
    )
    result = analyzer.analyze(micro_dataset.x[0], k=2)
    assert result.shap_values.shape == (1, micro_dataset.num_frames)
