"""Tests for the leave-one-out occlusion baseline."""

import numpy as np
import pytest

from repro.models import CNNLSTMClassifier
from repro.xai import (
    PermutationShapExplainer,
    ShapConfig,
    occlusion_importance,
    occlusion_shap_agreement,
)


@pytest.fixture(scope="module")
def model(micro_model_config):
    return CNNLSTMClassifier(micro_model_config, np.random.default_rng(6))


def test_occlusion_shapes_and_validation(model):
    features = np.random.default_rng(0).random((8, model.config.feature_dim))
    values = occlusion_importance(model, features, class_index=1)
    assert values.shape == (8,)
    with pytest.raises(ValueError):
        occlusion_importance(model, features[None], class_index=1)
    with pytest.raises(ValueError):
        occlusion_importance(model, features, baseline="median")


def test_null_frame_scores_zero(model):
    features = np.random.default_rng(1).random((6, model.config.feature_dim))
    features[3] = 0.0  # identical to the zeros fill: occluding it is a no-op
    values = occlusion_importance(model, features, class_index=0)
    assert values[3] == pytest.approx(0.0, abs=1e-6)


def test_default_class_is_prediction(model):
    features = np.random.default_rng(2).random((6, model.config.feature_dim))
    predicted = int(model.classify_feature_series(features[None])[0].argmax())
    assert np.allclose(
        occlusion_importance(model, features),
        occlusion_importance(model, features, class_index=predicted),
    )


def test_mean_baseline_differs_from_zeros(model):
    features = np.random.default_rng(3).random((6, model.config.feature_dim))
    zeros = occlusion_importance(model, features, class_index=0, baseline="zeros")
    mean = occlusion_importance(model, features, class_index=0, baseline="mean")
    assert not np.allclose(zeros, mean)


def test_occlusion_correlates_with_shap(model):
    """On a smooth model the two importance notions broadly agree."""
    features = np.random.default_rng(4).random((8, model.config.feature_dim))
    occlusion = occlusion_importance(model, features, class_index=2)
    shap = PermutationShapExplainer(
        model, ShapConfig(num_samples=800, seed=0)
    ).explain(features, class_index=2)
    assert np.corrcoef(occlusion, shap)[0, 1] > 0.5


def test_agreement_metric():
    a = np.array([3.0, 2.0, 1.0, 0.0])
    b = np.array([3.0, 2.0, 0.0, 1.0])
    assert occlusion_shap_agreement(a, b, k=2) == 1.0
    assert occlusion_shap_agreement(a, b, k=3) == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        occlusion_shap_agreement(a, b[:3], k=2)
    with pytest.raises(ValueError):
        occlusion_shap_agreement(a, b, k=0)
