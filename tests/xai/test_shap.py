"""Tests for the Shapley-value estimators (Eq. 1).

Correctness anchors: the efficiency axiom (values sum to f(all) -
f(empty)), symmetry on a hand-built model with known structure, and
agreement between the kernel and permutation estimators.
"""

import numpy as np
import pytest

from repro.models import CNNLSTMClassifier
from repro.xai import KernelShapExplainer, PermutationShapExplainer, ShapConfig
from repro.xai.shap import _FrameValueFunction, _shapley_kernel_weights


@pytest.fixture(scope="module")
def model(micro_model_config):
    return CNNLSTMClassifier(micro_model_config, np.random.default_rng(4))


@pytest.fixture(scope="module")
def features(model, rng=None):
    return np.random.default_rng(7).random((8, model.config.feature_dim))


def test_shap_config_validation():
    with pytest.raises(ValueError):
        ShapConfig(num_samples=2)
    with pytest.raises(ValueError):
        ShapConfig(baseline="median")


def test_kernel_weights_symmetry():
    weights = _shapley_kernel_weights(10, np.arange(1, 10))
    assert np.allclose(weights, weights[::-1])  # pi(s) == pi(M - s)
    assert weights[0] == weights.max()  # extremes weighted most


def test_value_function_masks(model, features):
    value = _FrameValueFunction(model, features, class_index=0,
                                baseline="zeros", batch_size=64)
    full = value(np.ones((1, 8), dtype=bool))[0]
    direct = model.classify_feature_series(features[None])[0, 0]
    assert full == pytest.approx(direct, abs=1e-5)


def test_value_function_mean_baseline(model, features):
    value = _FrameValueFunction(model, features, class_index=0,
                                baseline="mean", batch_size=64)
    empty = value(np.zeros((1, 8), dtype=bool))[0]
    mean_series = np.broadcast_to(features.mean(0), features.shape)
    expected = model.classify_feature_series(mean_series[None])[0, 0]
    assert empty == pytest.approx(expected, abs=1e-5)


@pytest.mark.parametrize("explainer_cls", [KernelShapExplainer, PermutationShapExplainer])
def test_efficiency_axiom(model, features, explainer_cls):
    explainer = explainer_cls(model, ShapConfig(num_samples=256, seed=1))
    phi = explainer.explain(features, class_index=2)
    full = model.classify_feature_series(features[None])[0, 2]
    empty = model.classify_feature_series(np.zeros_like(features)[None])[0, 2]
    assert phi.sum() == pytest.approx(full - empty, abs=1e-4)


def test_estimators_agree(model, features):
    kernel = KernelShapExplainer(model, ShapConfig(num_samples=400, seed=0))
    permutation = PermutationShapExplainer(model, ShapConfig(num_samples=800, seed=0))
    phi_k = kernel.explain(features, class_index=1)
    phi_p = permutation.explain(features, class_index=1)
    correlation = np.corrcoef(phi_k, phi_p)[0, 1]
    assert correlation > 0.9


def test_default_class_is_prediction(model, features):
    explainer = KernelShapExplainer(model, ShapConfig(num_samples=64, seed=0))
    predicted = int(model.classify_feature_series(features[None])[0].argmax())
    phi_default = explainer.explain(features)
    phi_explicit = explainer.explain(features, class_index=predicted)
    assert np.allclose(phi_default, phi_explicit)


def test_null_frame_gets_null_value(model):
    """A frame identical to the baseline contributes exactly nothing."""
    features = np.random.default_rng(3).random((6, model.config.feature_dim))
    features[2] = 0.0  # identical to the zeros baseline in every coalition
    explainer = PermutationShapExplainer(model, ShapConfig(num_samples=600, seed=2))
    phi = explainer.explain(features, class_index=0)
    assert phi[2] == pytest.approx(0.0, abs=1e-9)


def test_shap_is_seed_deterministic(model, features):
    config = ShapConfig(num_samples=128, seed=42)
    a = KernelShapExplainer(model, config).explain(features, class_index=0)
    b = KernelShapExplainer(model, config).explain(features, class_index=0)
    assert np.allclose(a, b)


def test_rejects_bad_feature_shape(model):
    explainer = KernelShapExplainer(model, ShapConfig(num_samples=64))
    with pytest.raises(ValueError):
        explainer.explain(np.zeros((2, 8, 12)), class_index=0)
