"""Equivalence pins: the batched fast paths vs the per-frame references.

The batched sequence simulator and the batched heatmap chain are allowed
to differ from the per-frame reference only by single-precision rounding.
These tests pin that contract with tight tolerances and explicit output
dtype assertions, so a future "optimization" that changes the science
fails here rather than silently shifting every generated dataset.
"""

import numpy as np
import pytest

from repro.geometry.human import HumanModel, TrajectoryStyle, hand_trajectory
from repro.geometry.primitives import uv_sphere
from repro.radar.heatmap import (
    HeatmapConfig,
    drai_sequence,
    drai_sequence_reference,
    rdi_sequence,
    rdi_sequence_reference,
)
from repro.radar.processing import (
    angle_fft,
    angle_fft_sequence,
    doppler_fft,
    doppler_fft_sequence,
    range_fft,
    range_fft_sequence,
)
from repro.radar.simulator import FmcwRadarSimulator


@pytest.fixture(scope="module")
def pose_meshes():
    model = HumanModel()
    trajectory = hand_trajectory("push", 8, TrajectoryStyle())
    meshes = model.pose_sequence(trajectory)
    return [mesh.translated(np.array([0.0, 1.2, 0.0])) for mesh in meshes]


@pytest.fixture(scope="module")
def simulator():
    return FmcwRadarSimulator()


def _relative_error(fast, reference):
    scale = np.abs(reference).max()
    assert scale > 0.0
    return np.abs(fast.astype(np.complex128) - reference.astype(np.complex128)).max() / scale


class TestSequenceSimulator:
    def test_batched_matches_reference_tightly(self, simulator, pose_meshes):
        reference = simulator.simulate_sequence_reference(pose_meshes)
        batched = simulator.simulate_sequence(pose_meshes)
        assert batched.dtype == np.complex64
        assert reference.dtype == np.complex64
        assert batched.shape == reference.shape
        assert _relative_error(batched, reference) < 5e-6

    def test_static_sequences_match(self, simulator, pose_meshes):
        reference = simulator.simulate_sequence_reference(
            pose_meshes, estimate_velocities=False
        )
        batched = simulator.simulate_sequence(
            pose_meshes, estimate_velocities=False
        )
        assert batched.dtype == np.complex64
        assert _relative_error(batched, reference) < 5e-6

    def test_extra_facets_match(self, simulator, pose_meshes):
        clutter = uv_sphere(0.3, reflectivity=0.4).translated(
            np.array([1.0, 2.0, 0.0])
        )
        extras = [simulator.facet_set(clutter)]
        reference = simulator.simulate_sequence_reference(
            pose_meshes, extra_facets=extras
        )
        batched = simulator.simulate_sequence(pose_meshes, extra_facets=extras)
        assert _relative_error(batched, reference) < 5e-6

    def test_mixed_topology_falls_back_to_reference_exactly(self, simulator):
        # Different face counts per frame: the batched precondition fails,
        # so simulate_sequence must run the per-frame path bit-identically.
        offset = np.array([0.0, 1.5, 0.0])
        meshes = [
            uv_sphere(0.3, segments=8).translated(offset),
            uv_sphere(0.3, segments=10).translated(offset),
        ]
        reference = simulator.simulate_sequence_reference(
            meshes, estimate_velocities=False
        )
        fallback = simulator.simulate_sequence(meshes, estimate_velocities=False)
        assert np.array_equal(fallback, reference)

    def test_velocities_change_the_result(self, simulator, pose_meshes):
        moving = simulator.simulate_sequence(pose_meshes)
        static = simulator.simulate_sequence(
            pose_meshes, estimate_velocities=False
        )
        assert not np.allclose(moving, static)


class TestSequenceKernels:
    @pytest.fixture(scope="class")
    def cubes(self, simulator, pose_meshes):
        return simulator.simulate_sequence(pose_meshes)

    def test_range_fft_sequence(self, cubes):
        batched = range_fft_sequence(cubes)
        reference = np.stack([range_fft(cube) for cube in cubes])
        assert batched.dtype == np.complex64
        assert _relative_error(batched, reference) < 1e-5

    def test_doppler_fft_sequence(self, cubes):
        profiles = range_fft_sequence(cubes)
        batched = doppler_fft_sequence(profiles)
        reference = np.stack([doppler_fft(profile) for profile in profiles])
        assert batched.dtype == np.complex64
        assert _relative_error(batched, reference) < 1e-5

    def test_angle_fft_sequence(self, cubes):
        profiles = range_fft_sequence(cubes)
        batched = angle_fft_sequence(profiles, 32)
        reference = np.stack([angle_fft(profile, 32) for profile in profiles])
        assert batched.dtype == np.complex64
        assert _relative_error(batched, reference) < 1e-5

    def test_angle_fft_sequence_rejects_too_few_bins(self, cubes):
        profiles = range_fft_sequence(cubes)
        with pytest.raises(ValueError):
            angle_fft_sequence(profiles, profiles.shape[-1] - 1)

    def test_sequence_tensor_shape_is_validated(self, cubes):
        with pytest.raises(ValueError):
            range_fft_sequence(cubes[0])


class TestHeatmapChain:
    @pytest.fixture(scope="class")
    def cubes(self, simulator, pose_meshes):
        return simulator.simulate_sequence(pose_meshes)

    @pytest.mark.parametrize("clutter", ["background", "mti", "none"])
    def test_drai_matches_reference(self, cubes, clutter):
        config = HeatmapConfig(clutter_removal=clutter)
        batched = drai_sequence(cubes, config)
        reference = drai_sequence_reference(cubes, config)
        assert batched.dtype == np.float32
        assert reference.dtype == np.float64
        assert batched.shape == reference.shape
        # Normalized heatmaps live in [0, 1]; absolute tolerance is the
        # natural metric.
        assert np.abs(batched - reference).max() < 2e-4

    def test_rdi_matches_reference(self, cubes):
        batched = rdi_sequence(cubes)
        reference = rdi_sequence_reference(cubes)
        assert batched.dtype == np.float32
        assert batched.shape == reference.shape
        assert np.abs(batched - reference).max() < 2e-4

    def test_unnormalized_drai_matches_reference(self, cubes):
        config = HeatmapConfig(normalize=False)
        batched = drai_sequence(cubes, config)
        reference = drai_sequence_reference(cubes, config)
        assert batched.dtype == np.float32
        assert np.isfinite(batched).all()
        assert (batched >= 0.0).all()
        assert _relative_error(batched, reference) < 1e-5
