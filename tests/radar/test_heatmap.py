"""Tests for the RDI/DRAI heatmap pipelines."""

import numpy as np
import pytest

from repro.geometry import planar_patch
from repro.radar import (
    AntennaArray,
    ChirpConfig,
    FmcwRadarSimulator,
    HeatmapConfig,
    RadarConfig,
    drai_frame,
    drai_sequence,
    heatmap_deviation,
    rdi_sequence,
)


@pytest.fixture(scope="module")
def sim() -> FmcwRadarSimulator:
    return FmcwRadarSimulator(
        RadarConfig(
            chirp=ChirpConfig(num_adc_samples=64, num_chirps=8),
            antennas=AntennaArray(num_tx=2, num_rx=4),
        )
    )


@pytest.fixture(scope="module")
def config() -> HeatmapConfig:
    return HeatmapConfig(range_bin_start=16, range_bin_stop=32, num_angle_bins=16)


def _moving_target_cubes(sim, n_frames=6, step=0.03):
    cubes = []
    for t in range(n_frames):
        mesh = planar_patch(0.05, 0.05).translated([0.0, 1.0 + step * t, 0.0])
        cubes.append(sim.frame_cube(mesh))
    return np.stack(cubes)


def test_config_validation():
    with pytest.raises(ValueError):
        HeatmapConfig(range_bin_start=10, range_bin_stop=10)
    with pytest.raises(ValueError):
        HeatmapConfig(num_angle_bins=1)
    with pytest.raises(ValueError):
        HeatmapConfig(clutter_removal="fancy")


def test_frame_shape_property(config):
    assert config.frame_shape == (16, 16)
    assert config.num_range_bins == 16


def test_range_axis(config):
    chirp = ChirpConfig()
    axis = config.range_axis_m(chirp)
    assert axis.shape == (16,)
    assert axis[0] == pytest.approx(16 * chirp.range_resolution_m)


def test_drai_sequence_shape_and_range(sim, config):
    cubes = _moving_target_cubes(sim)
    heatmaps = drai_sequence(cubes, config)
    assert heatmaps.shape == (6, 16, 16)
    assert heatmaps.max() == pytest.approx(1.0)
    assert heatmaps.min() >= 0.0


def test_drai_tracks_moving_target(sim, config):
    # Keep the receding target inside the 16-bin range crop.
    cubes = _moving_target_cubes(sim, n_frames=8, step=0.02)
    heatmaps = drai_sequence(cubes, config)
    range_peaks = [int(frame.sum(axis=1).argmax()) for frame in heatmaps]
    # The target recedes: peak range bin increases across the sequence.
    assert range_peaks[-1] > range_peaks[0]


def test_background_subtraction_removes_static_target(sim, config):
    static = planar_patch(0.2, 0.2).translated([0.3, 1.1, 0.0])
    static_cube = sim.frame_cube(static)
    cubes = _moving_target_cubes(sim) + static_cube[None]
    heatmaps = drai_sequence(cubes, config)
    no_static = drai_sequence(_moving_target_cubes(sim), config)
    # The static plate's cell stays quiet: heatmaps with and without it
    # are nearly identical after background subtraction + median.
    assert np.abs(heatmaps - no_static).max() < 0.25


def test_clutter_removal_none_keeps_static_target(sim):
    config = HeatmapConfig(
        range_bin_start=16, range_bin_stop=32, num_angle_bins=16,
        clutter_removal="none", dynamic_median=False,
    )
    static = planar_patch(0.2, 0.2).translated([0.0, 1.1, 0.0])
    cubes = np.stack([sim.frame_cube(static)] * 4)
    heatmaps = drai_sequence(cubes, config)
    assert heatmaps.max() == pytest.approx(1.0)
    peak_bin = int(heatmaps[0].sum(axis=1).argmax())
    assert peak_bin == ChirpConfig().range_bin_for(1.1) - config.range_bin_start


def test_normalize_false_returns_linear(sim, config):
    from dataclasses import replace

    raw_config = replace(config, normalize=False)
    cubes = _moving_target_cubes(sim)
    heatmaps = drai_sequence(cubes, raw_config)
    assert heatmaps.max() > 10.0  # unnormalized linear magnitudes


def test_rdi_sequence_shape(sim, config):
    cubes = _moving_target_cubes(sim)
    rdi = rdi_sequence(cubes, config)
    assert rdi.shape == (6, 16, 8)  # (frames, range bins, chirps)
    assert rdi.max() == pytest.approx(1.0)


def test_drai_frame_standalone(sim, config):
    mesh = planar_patch(0.05, 0.05).translated([0.0, 1.0, 0.0])
    frame = drai_frame(sim.frame_cube(mesh), config)
    assert frame.shape == (16, 16)


def test_heatmap_deviation_metrics():
    clean = np.zeros((2, 4, 4))
    poisoned = clean.copy()
    poisoned[0, 1, 1] = 0.5
    dev = heatmap_deviation(clean, poisoned)
    assert dev["max_abs"] == pytest.approx(0.5)
    assert dev["l2"] == pytest.approx(0.5)
    assert dev["relative_l2"] == 0.0  # clean norm is zero


def test_heatmap_deviation_shape_mismatch():
    with pytest.raises(ValueError):
        heatmap_deviation(np.zeros((2, 4, 4)), np.zeros((2, 4, 5)))


def test_angle_axis_flip_puts_positive_x_on_right(sim, config):
    left = planar_patch(0.05, 0.05).translated([-0.4, 1.0, 0.0])
    right = planar_patch(0.05, 0.05).translated([0.4, 1.0, 0.0])
    config_raw = HeatmapConfig(
        range_bin_start=16, range_bin_stop=32, num_angle_bins=16,
        clutter_removal="none", dynamic_median=False,
    )
    def angle_peak(mesh):
        heatmap = drai_sequence(np.stack([sim.frame_cube(mesh)]), config_raw)[0]
        return int(heatmap.sum(axis=0).argmax())

    assert angle_peak(right) > angle_peak(left)
