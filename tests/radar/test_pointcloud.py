"""Tests for CFAR detection and point-cloud extraction."""

import numpy as np
import pytest

from repro.radar import (
    CfarConfig,
    ChirpConfig,
    HeatmapConfig,
    RadarPointCloud,
    ca_cfar_2d,
    extract_pointcloud,
    pointcloud_sequence,
)

CONFIG = HeatmapConfig(range_bin_start=16, range_bin_stop=32, num_angle_bins=16)
CHIRP = ChirpConfig()


def test_cfar_config_validation():
    with pytest.raises(ValueError):
        CfarConfig(training_cells=0)
    with pytest.raises(ValueError):
        CfarConfig(threshold_factor=0.0)


def test_cfar_detects_isolated_peak():
    field = np.full((16, 16), 0.1)
    field[8, 5] = 2.0
    mask = ca_cfar_2d(field, CfarConfig(threshold_factor=3.0))
    assert mask[8, 5]
    assert mask.sum() == 1


def test_cfar_flat_field_no_detections():
    field = np.full((16, 16), 0.5)
    mask = ca_cfar_2d(field, CfarConfig(threshold_factor=1.5))
    assert not mask.any()


def test_cfar_adapts_to_local_noise():
    """A peak over a high-noise floor needs proportionally more power."""
    field = np.full((16, 16), 0.1)
    field[:, 8:] = 1.0  # right half is 10x noisier
    field[4, 3] = 0.5  # 5x the local floor -> detected
    field[4, 12] = 1.5  # only 1.5x the local floor -> not detected
    mask = ca_cfar_2d(field, CfarConfig(threshold_factor=3.0))
    assert mask[4, 3]
    assert not mask[4, 12]


def test_cfar_validates_rank():
    with pytest.raises(ValueError):
        ca_cfar_2d(np.zeros(16))


def test_cfar_matches_naive_reference(rng):
    """The box-filter implementation equals a brute-force CA-CFAR."""
    field = rng.random((12, 12))
    config = CfarConfig(guard_cells=1, training_cells=2, threshold_factor=2.0)
    fast = ca_cfar_2d(field, config)

    outer, inner = 3, 1
    reference = np.zeros_like(fast)
    for r in range(12):
        for c in range(12):
            total, count = 0.0, 0
            for dr in range(-outer, outer + 1):
                for dc in range(-outer, outer + 1):
                    if max(abs(dr), abs(dc)) <= inner:
                        continue
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < 12 and 0 <= cc < 12:
                        total += field[rr, cc]
                        count += 1
            reference[r, c] = field[r, c] > 2.0 * total / max(count, 1)
    # Edge handling differs (zero padding counts empty cells); compare the
    # interior where both definitions agree.
    assert (fast[outer:-outer, outer:-outer] == reference[outer:-outer, outer:-outer]).all()


def test_extract_pointcloud_positions():
    heatmap = np.full(CONFIG.frame_shape, 0.05)
    heatmap[4, 8] = 1.0
    cloud = extract_pointcloud(heatmap, CONFIG, CHIRP)
    assert len(cloud) == 1
    expected_range = (CONFIG.range_bin_start + 4) * CHIRP.range_resolution_m
    assert cloud.ranges_m[0] == pytest.approx(expected_range)
    assert cloud.intensities[0] == pytest.approx(1.0)
    assert abs(cloud.azimuths_deg[0]) <= 10.0  # near boresight


def test_extract_pointcloud_validates_shape():
    with pytest.raises(ValueError):
        extract_pointcloud(np.zeros((4, 4)), CONFIG, CHIRP)


def test_pointcloud_cartesian_conversion():
    cloud = RadarPointCloud(
        ranges_m=np.array([1.0, 2.0]),
        azimuths_deg=np.array([0.0, 90.0]),
        intensities=np.array([1.0, 0.5]),
    )
    xy = cloud.to_cartesian()
    assert np.allclose(xy[0], [0.0, 1.0], atol=1e-9)
    assert np.allclose(xy[1], [2.0, 0.0], atol=1e-9)


def test_pointcloud_strongest():
    cloud = RadarPointCloud(
        ranges_m=np.array([1.0, 2.0, 3.0]),
        azimuths_deg=np.zeros(3),
        intensities=np.array([0.2, 0.9, 0.5]),
    )
    top = cloud.strongest(2)
    assert len(top) == 2
    assert top.intensities[0] == pytest.approx(0.9)
    with pytest.raises(ValueError):
        cloud.strongest(-1)


def test_pointcloud_field_length_validation():
    with pytest.raises(ValueError):
        RadarPointCloud(np.zeros(2), np.zeros(3), np.zeros(2))


def test_pointcloud_sequence(micro_generator, micro_generation_config):
    heatmaps = micro_generator.generate_sample("push", 1.0, 0.0)
    clouds = pointcloud_sequence(
        heatmaps,
        micro_generation_config.heatmap,
        micro_generation_config.radar.chirp,
    )
    assert len(clouds) == micro_generation_config.num_frames
    # The moving hand produces detections in at least some frames.
    assert any(len(cloud) > 0 for cloud in clouds)
