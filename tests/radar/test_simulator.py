"""Tests for the Eq. 3 IF-signal simulator.

The key physics checks: a point-like target lands in the predicted
Range-FFT bin, amplitudes follow the 1/(d_T d_R) law, angles map to the
correct Angle-FFT bins, and the fast separable path agrees with the exact
per-chirp reference on moving scenes.
"""

import numpy as np
import pytest

from repro.geometry import planar_patch, uv_sphere
from repro.radar import (
    AntennaArray,
    ChirpConfig,
    FacetSet,
    FmcwRadarSimulator,
    RadarConfig,
    angle_fft,
    range_fft,
)


@pytest.fixture(scope="module")
def simulator() -> FmcwRadarSimulator:
    config = RadarConfig(
        chirp=ChirpConfig(num_adc_samples=64, num_chirps=8),
        antennas=AntennaArray(num_tx=2, num_rx=4),
    )
    return FmcwRadarSimulator(config)


def _target_at(distance: float, x: float = 0.0, size: float = 0.05):
    return planar_patch(size, size).translated([x, distance, 0.0])


def test_cube_shape(simulator):
    cube = simulator.frame_cube(_target_at(1.0))
    assert cube.shape == simulator.config.cube_shape
    assert cube.dtype == np.complex64


def test_point_target_range_bin(simulator):
    chirp = simulator.config.chirp
    for distance in (0.6, 1.2, 1.8):
        cube = simulator.frame_cube(_target_at(distance))
        profile = np.abs(range_fft(cube)).sum(axis=(1, 2))
        peak = int(profile.argmax())
        assert peak == pytest.approx(chirp.range_bin_for(distance), abs=1)


def test_amplitude_follows_inverse_square_law(simulator):
    near = simulator.frame_cube(_target_at(0.8))
    far = simulator.frame_cube(_target_at(1.6))
    ratio = np.abs(near).max() / np.abs(far).max()
    # Two-way 1/(d_T * d_R): doubling range quarters the amplitude.
    assert ratio == pytest.approx(4.0, rel=0.15)


def test_larger_facets_reflect_more(simulator):
    small = simulator.frame_cube(_target_at(1.0, size=0.05))
    large = simulator.frame_cube(_target_at(1.0, size=0.10))
    assert np.abs(large).max() > 2.0 * np.abs(small).max()


def test_reflectivity_scales_signal(simulator):
    dim = _target_at(1.0).with_reflectivity(0.2)
    bright = _target_at(1.0).with_reflectivity(0.8)
    ratio = np.abs(simulator.frame_cube(bright)).max() / np.abs(
        simulator.frame_cube(dim)
    ).max()
    assert ratio == pytest.approx(4.0, rel=0.05)


def test_angle_bin_tracks_azimuth(simulator):
    def peak_angle_bin(x):
        cube = simulator.frame_cube(_target_at(1.2, x=x))
        profile = range_fft(cube)
        spectrum = np.abs(angle_fft(profile, 32)).sum(axis=(0, 1))
        return int(spectrum.argmax())

    center = peak_angle_bin(0.0)
    left = peak_angle_bin(-0.5)
    right = peak_angle_bin(0.5)
    assert left != right
    assert min(left, right) < center < max(left, right)


def test_backside_target_invisible(simulator):
    # The patch faces -y; flip it away from the radar and nothing returns.
    from repro.geometry import RigidTransform

    patch = planar_patch(0.05, 0.05)
    flipped = patch.transformed(
        RigidTransform(rotation=np.diag([1.0, -1.0, -1.0]))
    ).translated([0.0, 1.0, 0.0])
    cube = simulator.frame_cube(flipped)
    assert np.abs(cube).max() == pytest.approx(0.0)


def test_empty_scene_returns_zeros(simulator):
    from repro.geometry import TriangleMesh

    empty = TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3), dtype=int))
    cube = simulator.frame_cube(empty)
    assert np.abs(cube).max() == 0.0


def test_facet_set_shapes(simulator):
    facets = simulator.facet_set(_target_at(1.0))
    k = simulator.config.antennas.num_virtual
    assert facets.amplitudes.shape == (facets.num_facets, k)
    assert facets.delays.shape == (facets.num_facets, k)
    assert (facets.delay_rates == 0.0).all()


def test_empty_facet_set():
    empty = FacetSet.empty(8)
    assert empty.num_facets == 0


def test_doppler_phase_from_velocity(simulator):
    mesh = _target_at(1.0)
    velocity = np.tile([0.0, -1.0, 0.0], (mesh.num_faces, 1))  # toward radar
    facets = simulator.facet_set(mesh, velocities=velocity)
    # Approaching target shortens the round trip: negative delay rate.
    assert (facets.delay_rates < 0.0).all()
    cube_static = simulator.frame_cube(mesh)
    cube_moving = simulator.frame_cube(mesh, velocities=velocity)
    # Chirp-to-chirp phase rotates for the mover, not for the static target.
    static_phase = np.angle(cube_static[0, :, 0])
    moving_phase = np.angle(cube_moving[0, :, 0])
    assert np.allclose(np.diff(static_phase), 0.0, atol=1e-4)
    assert not np.allclose(np.diff(moving_phase), 0.0, atol=1e-3)


def test_exact_matches_separable_static(simulator):
    mesh = uv_sphere(0.1, rings=4, segments=6).translated([0.2, 1.1, 0.0])
    fast = simulator.frame_cube(mesh)
    exact = simulator.frame_cube_exact(mesh)
    error = np.abs(fast - exact).max() / np.abs(exact).max()
    # The separable path evaluates the beat term at the channel-averaged
    # delay; per-channel beat offsets over the ~1.5 cm array span cost a
    # few percent worst-case amplitude (far below a range bin).
    assert error < 0.10


def test_exact_matches_separable_moving(simulator):
    mesh = uv_sphere(0.1, rings=4, segments=6).translated([0.0, 1.0, 0.0])
    velocities = np.tile([0.0, -0.5, 0.0], (mesh.num_faces, 1))
    fast = simulator.frame_cube(mesh, velocities=velocities)
    exact = simulator.frame_cube_exact(mesh, velocities=velocities)
    error = np.abs(fast - exact).max() / np.abs(exact).max()
    # Adds intra-frame range drift (< 1/30 bin at 0.5 m/s) on top of the
    # per-channel beat-delay approximation checked above.
    assert error < 0.15


def test_sequence_velocities_require_constant_topology(simulator):
    a = uv_sphere(0.1, rings=4, segments=6).translated([0.0, 1.0, 0.0])
    b = uv_sphere(0.1, rings=5, segments=6).translated([0.0, 1.0, 0.0])
    with pytest.raises(ValueError):
        simulator.sequence_velocities([a, b])


def test_simulate_sequence_shape(simulator):
    meshes = [
        uv_sphere(0.1, rings=4, segments=6).translated([0.0, 1.0 + 0.01 * t, 0.0])
        for t in range(5)
    ]
    cubes = simulator.simulate_sequence(meshes)
    assert cubes.shape == (5, *simulator.config.cube_shape)


def test_simulate_sequence_with_static_extras(simulator):
    meshes = [uv_sphere(0.1, rings=4, segments=6).translated([0.0, 1.0, 0.0])] * 3
    clutter = simulator.facet_set(_target_at(2.0))
    with_extras = simulator.simulate_sequence(meshes, extra_facets=[clutter])
    without = simulator.simulate_sequence(meshes)
    assert np.abs(with_extras - without).max() > 0.0


def test_empty_sequence_rejected(simulator):
    with pytest.raises(ValueError):
        simulator.simulate_sequence([])


# ----------------------------------------------------------------------
# Adaptive chunk facet budget
# ----------------------------------------------------------------------

def test_facet_budget_scales_with_cores(monkeypatch):
    import os

    from repro.radar import simulator as sim

    monkeypatch.delenv("REPRO_FACET_BUDGET", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    assert sim.chunk_facet_budget() == sim._BASE_FACET_BUDGET * 2
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert sim.chunk_facet_budget() == sim._BASE_FACET_BUDGET


def test_facet_budget_clamped_to_bounds(monkeypatch):
    import os

    from repro.radar import simulator as sim

    monkeypatch.delenv("REPRO_FACET_BUDGET", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 1024)
    assert sim.chunk_facet_budget() == sim._MAX_FACET_BUDGET


def test_facet_budget_env_override_and_clamp(monkeypatch):
    from repro.radar import simulator as sim

    monkeypatch.setenv("REPRO_FACET_BUDGET", "8192")
    assert sim.chunk_facet_budget() == 8192
    monkeypatch.setenv("REPRO_FACET_BUDGET", "1")
    assert sim.chunk_facet_budget() == sim._MIN_FACET_BUDGET
    monkeypatch.setenv("REPRO_FACET_BUDGET", str(10 ** 9))
    assert sim.chunk_facet_budget() == sim._MAX_FACET_BUDGET


def test_facet_budget_ignores_malformed_override(monkeypatch):
    import os

    from repro.radar import simulator as sim

    monkeypatch.setenv("REPRO_FACET_BUDGET", "not-a-number")
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert sim.chunk_facet_budget() == sim._BASE_FACET_BUDGET


def test_facet_budget_does_not_change_simulation(simulator, monkeypatch):
    """The budget is a pure chunking knob: output bytes are invariant."""
    meshes = [
        uv_sphere(0.1, rings=4, segments=6).translated([0.0, 1.0 + 0.01 * t, 0.0])
        for t in range(3)
    ]
    monkeypatch.setenv("REPRO_FACET_BUDGET", "4096")
    small_chunks = simulator.simulate_sequence(meshes)
    monkeypatch.setenv("REPRO_FACET_BUDGET", "262144")
    large_chunks = simulator.simulate_sequence(meshes)
    assert small_chunks.tobytes() == large_chunks.tobytes()
