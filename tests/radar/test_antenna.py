"""Tests for the MIMO virtual antenna array."""

import numpy as np
import pytest

from repro.radar import AntennaArray


def test_virtual_count():
    assert AntennaArray(num_tx=4, num_rx=4).num_virtual == 16
    assert AntennaArray(num_tx=1, num_rx=3).num_virtual == 3


def test_rx_spacing_is_half_wavelength():
    array = AntennaArray(num_tx=2, num_rx=4)
    rx = array.rx_positions()
    spacing = np.diff(rx[:, 0])
    assert np.allclose(spacing, array.wavelength_m / 2.0)


def test_virtual_array_is_uniform_ula():
    array = AntennaArray(num_tx=3, num_rx=4)
    virtual = array.virtual_positions()
    xs = np.sort(virtual[:, 0])
    spacing = np.diff(xs)
    # TX pitch = num_rx * d and RX pitch = d combine into a gapless ULA
    # whose midpoint pitch is d / 2 (quarter wavelength).
    assert np.allclose(spacing, array.element_spacing_m / 2.0, atol=1e-12)
    assert len(xs) == 12


def test_arrays_centered_at_origin():
    array = AntennaArray(num_tx=2, num_rx=4)
    assert np.allclose(array.tx_positions().mean(axis=0), array.phase_center())
    assert np.allclose(array.rx_positions().mean(axis=0), array.phase_center())


def test_height_offsets_z():
    array = AntennaArray(height_m=0.8)
    assert np.allclose(array.virtual_positions()[:, 2], 0.8)
    assert np.allclose(array.phase_center(), [0.0, 0.0, 0.8])


def test_pair_index_layout():
    array = AntennaArray(num_tx=2, num_rx=4)
    assert array.pair_index(0, 0) == 0
    assert array.pair_index(1, 0) == 4
    assert array.pair_index(1, 3) == 7
    with pytest.raises(IndexError):
        array.pair_index(2, 0)


def test_validation():
    with pytest.raises(ValueError):
        AntennaArray(num_tx=0)
    with pytest.raises(ValueError):
        AntennaArray(wavelength_m=0.0)
