"""Tests for thermal noise injection and environment clutter."""

import numpy as np
import pytest

from repro.radar import add_thermal_noise, random_environment


def test_noise_power_matches_snr(rng):
    signal = np.full((8, 16, 4), 1.0 + 0.0j, dtype=np.complex64)
    noisy = add_thermal_noise(signal, snr_db=10.0, rng=rng)
    noise = noisy - signal
    measured_snr = 10.0 * np.log10(
        np.mean(np.abs(signal) ** 2) / np.mean(np.abs(noise) ** 2)
    )
    assert measured_snr == pytest.approx(10.0, abs=1.0)


def test_noise_scales_with_snr(rng):
    signal = np.full((8, 16, 4), 1.0 + 0.0j, dtype=np.complex64)
    low = add_thermal_noise(signal, snr_db=0.0, rng=np.random.default_rng(0)) - signal
    high = add_thermal_noise(signal, snr_db=20.0, rng=np.random.default_rng(0)) - signal
    assert np.abs(low).mean() > 5.0 * np.abs(high).mean()


def test_zero_signal_stays_zero(rng):
    signal = np.zeros((4, 4, 2), dtype=np.complex64)
    noisy = add_thermal_noise(signal, snr_db=10.0, rng=rng)
    assert np.abs(noisy).max() == 0.0


def test_random_environment_structure(rng):
    env = random_environment(rng, num_objects=3)
    assert env.num_faces == 3 * 12  # three boxes
    # All clutter sits in front of the radar (positive y) and inside the span.
    centroids = env.face_centroids()
    assert centroids[:, 1].min() > 0.5


def test_random_environment_validation(rng):
    with pytest.raises(ValueError):
        random_environment(rng, num_objects=0)


def test_environments_differ_by_seed():
    env_a = random_environment(np.random.default_rng(1))
    env_b = random_environment(np.random.default_rng(2))
    assert not np.allclose(env_a.vertices, env_b.vertices)


# ----------------------------------------------------------------------
# Batched synthesis: one whole-sequence draw vs the per-frame reference
# ----------------------------------------------------------------------

def test_batched_noise_bit_identical_to_per_frame_reference():
    """The batched draw is a pure refactor: same seed, same bytes.

    ``complex_awgn`` interleaves re/im per element, so a per-frame loop
    consumes the generator stream in exactly the order one whole-sequence
    draw does; nothing about the noise changes except the call count.
    """
    from repro.radar import add_thermal_noise_reference

    rng = np.random.default_rng(7)
    sequence = (
        rng.standard_normal((5, 8, 16, 4)) + 1j * rng.standard_normal((5, 8, 16, 4))
    ).astype(np.complex64)
    batched = add_thermal_noise(sequence, 15.0, np.random.default_rng(123))
    reference = add_thermal_noise_reference(
        sequence, 15.0, np.random.default_rng(123)
    )
    assert batched.dtype == reference.dtype
    assert batched.tobytes() == reference.tobytes()


def test_reference_requires_sequence_shape(rng):
    from repro.radar import add_thermal_noise_reference

    with pytest.raises(ValueError, match="sequence"):
        add_thermal_noise_reference(
            np.zeros((8, 16, 4), dtype=np.complex64), 10.0, rng
        )


def test_complex_awgn_stream_equivalence(rng):
    """Drawing (T, ...) at once == drawing each frame in a loop."""
    from repro.radar import complex_awgn

    whole = complex_awgn((3, 4, 2), 0.5, np.random.default_rng(9))
    # One generator instance threads through the loop.
    gen = np.random.default_rng(9)
    looped = np.stack([complex_awgn((4, 2), 0.5, gen) for _ in range(3)])
    assert whole.dtype == np.complex64
    assert whole.tobytes() == looped.tobytes()


def test_noise_sigma_zero_for_silent_cube():
    from repro.radar import noise_sigma

    assert noise_sigma(np.zeros((4, 4, 2), dtype=np.complex64), 10.0) == 0.0
    assert noise_sigma(np.ones((4, 4, 2), dtype=np.complex64), 10.0) > 0.0
