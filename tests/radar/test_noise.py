"""Tests for thermal noise injection and environment clutter."""

import numpy as np
import pytest

from repro.radar import add_thermal_noise, random_environment


def test_noise_power_matches_snr(rng):
    signal = np.full((8, 16, 4), 1.0 + 0.0j, dtype=np.complex64)
    noisy = add_thermal_noise(signal, snr_db=10.0, rng=rng)
    noise = noisy - signal
    measured_snr = 10.0 * np.log10(
        np.mean(np.abs(signal) ** 2) / np.mean(np.abs(noise) ** 2)
    )
    assert measured_snr == pytest.approx(10.0, abs=1.0)


def test_noise_scales_with_snr(rng):
    signal = np.full((8, 16, 4), 1.0 + 0.0j, dtype=np.complex64)
    low = add_thermal_noise(signal, snr_db=0.0, rng=np.random.default_rng(0)) - signal
    high = add_thermal_noise(signal, snr_db=20.0, rng=np.random.default_rng(0)) - signal
    assert np.abs(low).mean() > 5.0 * np.abs(high).mean()


def test_zero_signal_stays_zero(rng):
    signal = np.zeros((4, 4, 2), dtype=np.complex64)
    noisy = add_thermal_noise(signal, snr_db=10.0, rng=rng)
    assert np.abs(noisy).max() == 0.0


def test_random_environment_structure(rng):
    env = random_environment(rng, num_objects=3)
    assert env.num_faces == 3 * 12  # three boxes
    # All clutter sits in front of the radar (positive y) and inside the span.
    centroids = env.face_centroids()
    assert centroids[:, 1].min() > 0.5


def test_random_environment_validation(rng):
    with pytest.raises(ValueError):
        random_environment(rng, num_objects=0)


def test_environments_differ_by_seed():
    env_a = random_environment(np.random.default_rng(1))
    env_b = random_environment(np.random.default_rng(2))
    assert not np.allclose(env_a.vertices, env_b.vertices)
