"""Tests for FMCW chirp configuration math."""

import numpy as np
import pytest

from repro.radar import SPEED_OF_LIGHT, ChirpConfig


def test_default_band_is_77ghz():
    chirp = ChirpConfig()
    assert chirp.start_frequency_hz == pytest.approx(77e9)
    assert chirp.wavelength_m == pytest.approx(SPEED_OF_LIGHT / 77e9)


def test_slope_is_bandwidth_over_ramp():
    chirp = ChirpConfig(bandwidth_hz=4e9, ramp_duration_s=20e-6)
    assert chirp.slope_hz_per_s == pytest.approx(2e14)


def test_range_resolution_formula():
    chirp = ChirpConfig(bandwidth_hz=3.84e9)
    assert chirp.range_resolution_m == pytest.approx(SPEED_OF_LIGHT / (2 * 3.84e9))


def test_max_range_scales_with_samples():
    base = ChirpConfig(num_adc_samples=64)
    doubled = ChirpConfig(num_adc_samples=128, ramp_duration_s=40e-6)
    assert doubled.max_range_m == pytest.approx(2 * base.max_range_m)


def test_doppler_resolution_and_span():
    chirp = ChirpConfig(num_chirps=16, chirp_repetition_s=250e-6)
    assert chirp.doppler_resolution_mps == pytest.approx(
        chirp.wavelength_m / (2 * 16 * 250e-6)
    )
    assert chirp.max_velocity_mps == pytest.approx(chirp.wavelength_m / (4 * 250e-6))


def test_beat_frequency_roundtrip():
    chirp = ChirpConfig()
    r = 1.3
    beat = chirp.beat_frequency_for_range(r)
    # Beat frequency maps back to the same range bin.
    bin_index = chirp.range_bin_for(r)
    assert bin_index == pytest.approx(round(beat / (chirp.sample_rate_hz / chirp.num_adc_samples)), abs=1)


def test_fast_time_axis_shape_and_spacing():
    chirp = ChirpConfig(num_adc_samples=32)
    axis = chirp.fast_time_axis()
    assert axis.shape == (32,)
    assert np.allclose(np.diff(axis), 1.0 / chirp.sample_rate_hz)


def test_validation_errors():
    with pytest.raises(ValueError):
        ChirpConfig(bandwidth_hz=0.0)
    with pytest.raises(ValueError):
        ChirpConfig(num_adc_samples=1)
    with pytest.raises(ValueError):
        ChirpConfig(chirp_repetition_s=1e-6, ramp_duration_s=20e-6)
