"""Tests for the FFT/MTI signal-processing chain."""

import numpy as np
import pytest

from repro.radar import (
    angle_axis_degrees,
    angle_fft,
    doppler_fft,
    hann_window,
    integrate_chirps,
    log_compress,
    mti_filter,
    range_fft,
)


def test_hann_window_properties():
    window = hann_window(64)
    assert window.shape == (64,)
    assert window[0] == pytest.approx(0.0)
    assert window.max() <= 1.0
    assert hann_window(1).tolist() == [1.0]
    with pytest.raises(ValueError):
        hann_window(0)


def test_hann_window_is_cached_per_length_and_dtype():
    assert hann_window(64) is hann_window(64)
    assert hann_window(64, np.float32) is hann_window(64, np.float32)
    assert hann_window(64) is not hann_window(64, np.float32)
    assert hann_window(64).dtype == np.float64
    assert hann_window(64, np.float32).dtype == np.float32


def test_hann_window_is_read_only():
    window = hann_window(32)
    with pytest.raises(ValueError):
        window[0] = 1.0
    # float32 cache entries match the float64 window to rounding.
    np.testing.assert_allclose(
        hann_window(32, np.float32), hann_window(32), atol=1e-7
    )


def _synthetic_cube(beat_bin: int, n_s=64, n_c=8, k=4) -> np.ndarray:
    """IF cube with a single beat tone at a known bin (matching the
    simulator's exp(-j...) convention)."""
    t = np.arange(n_s)
    tone = np.exp(-2j * np.pi * beat_bin * t / n_s)
    return np.tile(tone[:, None, None], (1, n_c, k)).astype(np.complex64)


def test_range_fft_peak_at_expected_bin():
    cube = _synthetic_cube(beat_bin=9)
    profile = np.abs(range_fft(cube)).sum(axis=(1, 2))
    assert int(profile.argmax()) == 9


def test_range_fft_window_reduces_leakage():
    # An off-grid tone leaks less energy into far bins with the window.
    t = np.arange(64)
    tone = np.exp(-2j * np.pi * 9.5 * t / 64)
    cube = np.tile(tone[:, None, None], (1, 4, 2)).astype(np.complex64)
    windowed = np.abs(range_fft(cube, window=True)).sum(axis=(1, 2))
    raw = np.abs(range_fft(cube, window=False)).sum(axis=(1, 2))
    far_bins = list(range(20, 50))
    assert windowed[far_bins].sum() < raw[far_bins].sum()


def test_mti_removes_constant_chirps():
    cube = _synthetic_cube(beat_bin=5)
    profile = range_fft(cube)
    filtered = mti_filter(profile)
    assert np.abs(filtered).max() == pytest.approx(0.0, abs=1e-4)


def test_mti_keeps_doppler_modulated_target():
    cube = _synthetic_cube(beat_bin=5)
    # Impose chirp-to-chirp phase rotation (a moving target).
    rotation = np.exp(1j * np.linspace(0, 2.5, cube.shape[1]))
    cube = cube * rotation[None, :, None]
    filtered = mti_filter(range_fft(cube))
    assert np.abs(filtered).max() > 0.1


def test_doppler_fft_centers_zero_velocity():
    cube = _synthetic_cube(beat_bin=5, n_c=8)
    spectrum = np.abs(doppler_fft(range_fft(cube)))
    doppler_profile = spectrum.sum(axis=(0, 2))
    assert int(doppler_profile.argmax()) == 4  # fftshifted center


def test_angle_fft_zero_padding_and_validation():
    data = np.ones((4, 2, 8), dtype=np.complex64)
    spectrum = angle_fft(data, 32)
    assert spectrum.shape == (4, 2, 32)
    with pytest.raises(ValueError):
        angle_fft(data, 4)


def test_angle_fft_uniform_phase_peaks_at_center():
    data = np.ones((1, 1, 8), dtype=np.complex64)
    spectrum = np.abs(angle_fft(data, 32))[0, 0]
    assert int(spectrum.argmax()) == 16


def test_angle_axis_degrees_monotone_and_bounded():
    axis = angle_axis_degrees(32)
    assert axis.shape == (32,)
    assert (np.diff(axis) >= 0.0).all()
    assert axis.min() >= -90.0 and axis.max() <= 90.0
    assert axis[16] == pytest.approx(0.0)


def test_integrate_chirps_reduces_axis():
    data = np.ones((4, 8, 2), dtype=np.complex64)
    assert integrate_chirps(data).shape == (4, 2)


def test_log_compress_monotone():
    values = np.array([0.0, 1.0, 10.0])
    compressed = log_compress(values, scale=5.0)
    assert compressed[0] == 0.0
    assert (np.diff(compressed) > 0.0).all()
