"""Span tracing, metrics registry, and exporter behavior."""

from __future__ import annotations

import json

import pytest

from repro.runtime.telemetry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    Telemetry,
    _NOOP_SPAN,
    metrics,
    span,
    telemetry,
    traced,
)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_noop_singleton_when_disabled(self):
        assert not telemetry().enabled
        first = span("a")
        second = span("b", attr=1)
        assert first is second is _NOOP_SPAN
        with first:
            pass
        assert first.duration_s == 0.0
        assert telemetry().finished_spans() == []

    def test_records_duration_and_attributes(self):
        tel = Telemetry()
        tel.enable()
        with tel.span("work", facets=7) as sp:
            sp.set(visible=3)
        finished = tel.finished_spans()
        assert len(finished) == 1
        assert finished[0].name == "work"
        assert finished[0].attributes == {"facets": 7, "visible": 3}
        assert finished[0].duration_s > 0.0

    def test_nesting_tracks_depth_and_parent(self):
        tel = Telemetry()
        tel.enable()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        inner, outer = tel.finished_spans()
        assert inner.name == "inner"
        assert inner.depth == 1
        assert inner.parent_name == "outer"
        assert outer.depth == 0
        assert outer.parent_name == ""

    def test_exception_sets_error_attribute_and_unwinds(self):
        tel = Telemetry()
        tel.enable()
        with pytest.raises(ValueError):
            with tel.span("outer"):
                with tel.span("inner"):
                    raise ValueError("boom")
        inner, outer = tel.finished_spans()
        assert inner.attributes["error"] == "ValueError"
        assert outer.attributes["error"] == "ValueError"
        # Stack fully unwound: a new span starts at depth 0 again.
        with tel.span("next") as sp:
            assert sp.depth == 0

    def test_exception_skipping_inner_exit_still_unwinds(self):
        tel = Telemetry()
        tel.enable()
        outer = tel.span("outer")
        with pytest.raises(RuntimeError), outer:
            # Simulate a leaked inner span whose __exit__ never runs.
            tel.span("leaked").__enter__()
            raise RuntimeError
        with tel.span("after") as sp:
            assert sp.depth == 0
            assert sp.parent_name == ""

    def test_forced_span_measures_while_disabled(self):
        tel = Telemetry()
        timer = tel.span("wall", force=True)
        with timer:
            pass
        assert timer.duration_s > 0.0
        # ... but is not collected into the trace buffer.
        assert tel.finished_spans() == []

    def test_traced_decorator(self):
        tel = telemetry()
        tel.enable()

        @traced("fn.work", kind="test")
        def work(x):
            return x + 1

        assert work(1) == 2
        (sp,) = tel.finished_spans()
        assert sp.name == "fn.work"
        assert sp.attributes == {"kind": "test"}

    def test_aggregate_orders_by_total(self):
        tel = Telemetry()
        tel.enable()
        for _ in range(3):
            with tel.span("fast"):
                pass
        with tel.span("slow"):
            sum(range(50_000))
        table = tel.aggregate()
        assert set(table) == {"fast", "slow"}
        assert table["fast"]["count"] == 3
        assert table["fast"]["min_s"] <= table["fast"]["mean_s"] <= table["fast"]["max_s"]
        text = tel.format_aggregate()
        assert "fast" in text and "slow" in text


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_schema(self, tmp_path):
        tel = Telemetry()
        tel.enable()
        with tel.span("outer", label="x"):
            with tel.span("inner"):
                pass
        path = tel.export_chrome_trace(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        assert events[0]["ts"] == 0.0  # relative to first span start
        assert events[0]["args"] == {"label": "x"}
        # Nested span is contained within its parent.
        outer, inner = events
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_empty_trace_is_valid_json(self, tmp_path):
        tel = Telemetry()
        path = tel.export_chrome_trace(tmp_path / "trace.json")
        assert json.loads(path.read_text()) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("rate").set(3.5)
        snap = registry.snapshot()
        assert snap["hits"] == {"type": "counter", "value": 3}
        assert snap["rate"] == {"type": "gauge", "value": 3.5}

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_bucket_edges(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 5.0))
        # Exactly on a bound counts in that bucket (le semantics)...
        hist.observe(1.0)
        hist.observe(2.0)
        # ... just above it spills into the next one ...
        hist.observe(1.0000001)
        # ... and values beyond the last bound land in the overflow bucket.
        hist.observe(100.0)
        buckets = hist.snapshot()["buckets"]
        assert buckets["1.0"] == 1
        assert buckets["2.0"] == 2
        assert buckets["5.0"] == 0
        assert buckets["inf"] == 1
        assert hist.count == 4
        assert hist.mean == pytest.approx((1.0 + 2.0 + 1.0000001 + 100.0) / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_export_jsonl(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("cache.hit").inc(4)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        path = registry.export_jsonl(tmp_path / "metrics.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["name"] for entry in lines] == ["cache.hit", "lat"]
        assert lines[0]["value"] == 4
        assert lines[1]["type"] == "histogram"
        assert lines[1]["buckets"]["0.1"] == 1

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot() == {}


# ----------------------------------------------------------------------
# Pipeline integration: instrumented hot paths emit spans + metrics
# ----------------------------------------------------------------------
class TestPipelineIntegration:
    def test_simulator_emits_spans_and_metrics(self, micro_generator):
        tel = telemetry()
        tel.enable()
        meshes = micro_generator.sample_meshes("push", 1.0, 0.0)
        micro_generator.simulator.simulate_sequence(meshes[:2])
        names = {sp.name for sp in tel.finished_spans()}
        assert {
            "simulate.sequence",
            "simulate.sequence_geometry",
            "simulate.sequence_synthesis",
        } <= names
        snap = metrics().snapshot()
        assert snap["simulator.facets_processed"]["value"] > 0
        assert snap["simulator.chirps_synthesized"]["value"] > 0

    def test_reference_simulator_emits_per_frame_spans(self, micro_generator):
        tel = telemetry()
        tel.enable()
        meshes = micro_generator.sample_meshes("push", 1.0, 0.0)
        micro_generator.simulator.simulate_sequence_reference(meshes[:2])
        names = {sp.name for sp in tel.finished_spans()}
        assert {"simulate.sequence", "simulate.frame_cube", "simulate.facet_set"} <= names

    def test_cache_counts_hits_and_misses(self, micro_generator, tmp_path):
        from repro.datasets.cache import cached_dataset

        params = {"k": 1}

        def build():
            return micro_generator.generate_dataset(samples_per_class=1)

        cached_dataset(params, build, cache_dir=tmp_path)
        cached_dataset(params, build, cache_dir=tmp_path)
        snap = metrics().snapshot()
        assert snap["cache.miss"]["value"] == 1
        assert snap["cache.hit"]["value"] == 1
