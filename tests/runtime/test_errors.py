"""The exception hierarchy contract recovery code relies on."""

import pytest

from repro.runtime.errors import (
    CacheCorruptionError,
    ExperimentError,
    ReproError,
    SimulationError,
    TrainingDivergenceError,
)


def test_all_pipeline_errors_are_repro_errors():
    for cls in (
        CacheCorruptionError,
        SimulationError,
        TrainingDivergenceError,
        ExperimentError,
    ):
        assert issubclass(cls, ReproError)
    assert issubclass(ReproError, Exception)


def test_cache_corruption_carries_path_and_reason():
    err = CacheCorruptionError("/tmp/ds.npz", "truncated")
    assert err.path == "/tmp/ds.npz"
    assert err.reason == "truncated"
    assert "truncated" in str(err)
    assert "/tmp/ds.npz" in str(err)


def test_training_divergence_carries_epoch_and_loss():
    err = TrainingDivergenceError(epoch=7, loss=float("nan"))
    assert err.epoch == 7
    assert err.loss != err.loss  # NaN
    assert "epoch 7" in str(err)


def test_experiment_error_wraps_cause():
    cause = RuntimeError("boom")
    err = ExperimentError("fig8", cause)
    assert err.name == "fig8"
    assert err.cause is cause
    assert "fig8" in str(err)


def test_catching_the_family_does_not_swallow_type_errors():
    with pytest.raises(TypeError):
        try:
            raise TypeError("programming error")
        except ReproError:  # pragma: no cover - must not match
            pass
