"""SweepJournal: crash-safe checkpoints, resume, and campaign guards."""

import json

import pytest

from repro.runtime.errors import JournalError
from repro.runtime.journal import JOURNAL_VERSION, SweepJournal

CAMPAIGN = {"preset": "fast", "seed": 0, "experiments": ["a", "b"]}


def test_fresh_journal_writes_header(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal.open(path, CAMPAIGN):
        pass
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["journal_version"] == JOURNAL_VERSION
    assert header["campaign"] == CAMPAIGN


def test_record_and_resume_roundtrip(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal.open(path, CAMPAIGN) as journal:
        journal.record("a", "done", payload={"rows": 3}, attempts=2, wall_time_s=1.5)
        journal.record("b", "failed", payload={"error": "boom"})

    resumed = SweepJournal.open(path, CAMPAIGN, resume=True)
    try:
        assert resumed.completed_keys() == {"a"}
        entry = resumed.entry("a")
        assert entry["attempts"] == 2
        assert entry["wall_time_s"] == pytest.approx(1.5)
        assert entry["payload"] == {"rows": 3}
        # Failed units are NOT skipped on resume: they re-run.
        assert resumed.entry("b")["status"] == "failed"
    finally:
        resumed.close()


def test_latest_entry_wins(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal.open(path, CAMPAIGN) as journal:
        journal.record("a", "failed")
        journal.record("a", "done")
    resumed = SweepJournal.open(path, CAMPAIGN, resume=True)
    try:
        assert resumed.completed_keys() == {"a"}
    finally:
        resumed.close()


def test_fresh_open_truncates_existing(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal.open(path, CAMPAIGN) as journal:
        journal.record("a", "done")
    with SweepJournal.open(path, CAMPAIGN) as journal:
        assert journal.completed_keys() == set()
    assert len(path.read_text().splitlines()) == 1  # header only


def test_campaign_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal.open(path, CAMPAIGN):
        pass
    with pytest.raises(JournalError, match="campaign mismatch"):
        SweepJournal.open(path, {**CAMPAIGN, "seed": 1}, resume=True)


def test_version_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "sweep.jsonl"
    path.write_text(json.dumps({"journal_version": 999, "campaign": CAMPAIGN}) + "\n")
    with pytest.raises(JournalError, match="version"):
        SweepJournal.open(path, CAMPAIGN, resume=True)


def test_torn_final_line_is_ignored(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal.open(path, CAMPAIGN) as journal:
        journal.record("a", "done")
        journal.record("b", "done")
    # Simulate a crash mid-append: the final line is half-written JSON.
    with open(path, "a") as handle:
        handle.write('{"key": "c", "status": "do')
    resumed = SweepJournal.open(path, CAMPAIGN, resume=True)
    try:
        assert resumed.completed_keys() == {"a", "b"}
    finally:
        resumed.close()


def test_mid_file_garbage_is_skipped(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal.open(path, CAMPAIGN) as journal:
        journal.record("a", "done")
    lines = path.read_text().splitlines()
    lines.insert(1, "not json at all")
    path.write_text("\n".join(lines) + "\n")
    resumed = SweepJournal.open(path, CAMPAIGN, resume=True)
    try:
        assert resumed.completed_keys() == {"a"}
    finally:
        resumed.close()


def test_missing_header_refuses_resume(tmp_path):
    path = tmp_path / "sweep.jsonl"
    path.write_text(json.dumps({"key": "a", "status": "done"}) + "\n")
    with pytest.raises(JournalError, match="header"):
        SweepJournal.open(path, CAMPAIGN, resume=True)


def test_resume_missing_file_starts_fresh(tmp_path):
    path = tmp_path / "nested" / "sweep.jsonl"
    with SweepJournal.open(path, CAMPAIGN, resume=True) as journal:
        journal.record("a", "done")
    assert path.exists()


def test_record_rejects_unknown_status(tmp_path):
    with SweepJournal.open(tmp_path / "sweep.jsonl", CAMPAIGN) as journal:
        with pytest.raises(ValueError):
            journal.record("a", "maybe")


def test_append_after_close_raises(tmp_path):
    journal = SweepJournal.open(tmp_path / "sweep.jsonl", CAMPAIGN)
    journal.close()
    with pytest.raises(JournalError, match="closed"):
        journal.record("a", "done")


def test_records_written_counter(tmp_path):
    from repro.runtime.telemetry import metrics

    metrics().reset()
    with SweepJournal.open(tmp_path / "sweep.jsonl", CAMPAIGN) as journal:
        journal.record("a", "done")
        journal.record("b", "failed")
    assert metrics().counter("journal.records_written").value == 2
