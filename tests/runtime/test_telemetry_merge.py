"""Merge semantics of counters/gauges/histograms and the registry.

The replica fleet relies on these invariants to aggregate worker-process
metrics into the fleet-wide ``GET /metrics`` view: merged totals must
equal per-replica sums (commutatively), mismatched histogram boundaries
must be rejected rather than misbucketed, and quantile estimation must
keep working on merged buckets.
"""

import pytest

from repro.runtime.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)

BUCKETS = (0.01, 0.1, 1.0)


def _registry_a() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests").inc(5)
    registry.gauge("depth").set(3.0)
    histogram = registry.histogram("latency", BUCKETS)
    for value in (0.005, 0.05, 0.5, 2.0):
        histogram.observe(value)
    return registry

def _registry_b() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests").inc(7)
    registry.counter("only_b").inc(1)
    registry.gauge("depth").set(9.0)
    histogram = registry.histogram("latency", BUCKETS)
    for value in (0.05, 0.05, 0.09):
        histogram.observe(value)
    return registry


def test_counter_merge_adds_values():
    counter = Counter("c")
    counter.inc(3)
    counter.merge({"type": "counter", "value": 4})
    assert counter.value == 7


def test_counter_merge_rejects_other_types():
    with pytest.raises(TypeError, match="cannot merge"):
        Counter("c").merge({"type": "gauge", "value": 1.0})


def test_gauge_merge_is_last_write_wins():
    gauge = Gauge("g")
    gauge.set(2.0)
    gauge.merge({"type": "gauge", "value": 5.0})
    assert gauge.value == 5.0


def test_histogram_merge_adds_buckets_and_moments():
    ours = Histogram("h", BUCKETS)
    theirs = Histogram("h", BUCKETS)
    for value in (0.005, 0.5):
        ours.observe(value)
    for value in (0.05, 5.0):
        theirs.observe(value)
    ours.merge(theirs.snapshot())
    snap = ours.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(5.555)
    assert snap["buckets"] == {"0.01": 1, "0.1": 1, "1.0": 1, "inf": 1}


def test_histogram_merge_rejects_boundary_mismatch():
    ours = Histogram("h", BUCKETS)
    theirs = Histogram("h", (0.01, 0.2, 1.0))
    with pytest.raises(ValueError, match="bucket boundaries"):
        ours.merge(theirs.snapshot())
    # The rejected merge must not have half-applied anything.
    assert ours.count == 0


def test_histogram_merge_tolerates_reordered_bucket_labels():
    """A JSON round-trip with sort_keys reorders labels lexically
    ("10.0" < "2.5"); merging must still be label-keyed, not positional."""
    ours = Histogram("h", (2.5, 10.0))
    ours.observe(3.0)
    snap = {
        "type": "histogram",
        "count": 1,
        "sum": 11.0,
        "buckets": {"10.0": 1, "2.5": 0, "inf": 0},
    }
    ours.merge(snap)
    # The incoming "10.0" count must land in the 10.0 slot (alongside our
    # own 3.0 observation), not positionally in the first (2.5) slot.
    assert ours.snapshot()["buckets"] == {"2.5": 0, "10.0": 2, "inf": 0}


def test_registry_merge_is_commutative():
    ab = _registry_a()
    ab.merge_snapshot(_registry_b().snapshot())
    ba = _registry_b()
    ba.merge_snapshot(_registry_a().snapshot())
    left, right = ab.snapshot(), ba.snapshot()
    assert set(left) == set(right)
    assert left["requests"]["value"] == right["requests"]["value"] == 12
    assert left["only_b"]["value"] == 1
    assert left["latency"]["count"] == right["latency"]["count"] == 7
    assert left["latency"]["buckets"] == right["latency"]["buckets"]
    assert left["latency"]["sum"] == pytest.approx(right["latency"]["sum"])
    # Gauges are last-write-wins, the one instrument where order shows.
    assert left["depth"]["value"] == 9.0
    assert right["depth"]["value"] == 3.0


def test_merged_totals_equal_per_replica_sums():
    merged = MetricsRegistry()
    replicas = [_registry_a(), _registry_b()]
    for replica in replicas:
        merged.merge_snapshot(replica.snapshot())
    total = sum(r.snapshot()["latency"]["count"] for r in replicas)
    assert merged.snapshot()["latency"]["count"] == total


def test_quantile_from_merged_buckets():
    merged = MetricsRegistry()
    merged.merge_snapshot(_registry_a().snapshot())
    merged.merge_snapshot(_registry_b().snapshot())
    snap = merged.snapshot()["latency"]
    # 7 observations: 1 <= 0.01, 4 in (0.01, 0.1], 1 in (0.1, 1], 1 above.
    p50 = quantile_from_buckets(snap, 0.5)
    assert 0.01 < p50 <= 0.1
    # Ranks landing in the overflow bucket report the last finite bound.
    assert quantile_from_buckets(snap, 0.99) == pytest.approx(1.0)
    assert quantile_from_buckets(snap, 0.0) == 0.0


def test_empty_registry_merges():
    empty_into_full = _registry_a()
    before = empty_into_full.snapshot()
    empty_into_full.merge_snapshot(MetricsRegistry().snapshot())
    assert empty_into_full.snapshot() == before

    full_into_empty = MetricsRegistry()
    full_into_empty.merge_snapshot(before)
    assert full_into_empty.snapshot() == before


def test_registry_merge_rejects_type_conflicts():
    registry = MetricsRegistry()
    registry.counter("name").inc()
    with pytest.raises(TypeError):
        registry.merge_snapshot({"name": {"type": "gauge", "value": 1.0}})
    with pytest.raises(ValueError, match="unknown instrument"):
        registry.merge_snapshot({"other": {"type": "mystery"}})
