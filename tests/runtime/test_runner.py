"""Isolating experiment runner and failure report."""

import pytest

from repro.runtime.errors import ExperimentError
from repro.runtime.runner import run_experiments
from repro.runtime.telemetry import span, telemetry


def _jobs(executed):
    def ok_a():
        executed.append("a")
        return "result-a"

    def bad():
        executed.append("bad")
        raise RuntimeError("injected failure")

    def ok_b():
        executed.append("b")
        return "result-b"

    return [
        ("expa", "first experiment", ok_a),
        ("expbad", "failing experiment", bad),
        ("expb", "last experiment", ok_b),
    ]


def test_isolated_sweep_continues_past_failures():
    executed = []
    lines = []
    report = run_experiments(_jobs(executed), emit=lines.append)
    assert executed == ["a", "bad", "b"]  # everything ran despite the crash
    assert [o.name for o in report.outcomes] == ["expa", "expbad", "expb"]
    assert [o.ok for o in report.outcomes] == [True, False, True]
    assert report.num_failed == 1
    assert not report.all_ok


def test_failure_report_names_failure_with_traceback():
    report = run_experiments(_jobs([]), emit=lambda _: None)
    failed = report.failed
    assert len(failed) == 1
    assert failed[0].name == "expbad"
    assert "RuntimeError: injected failure" in failed[0].error
    assert "Traceback" in failed[0].traceback
    assert "injected failure" in failed[0].traceback
    formatted = report.format()
    assert "2/3 experiments succeeded" in formatted
    assert "FAILED expbad" in formatted
    assert "injected failure" in formatted


def test_outcomes_record_wall_time():
    report = run_experiments(_jobs([]), emit=lambda _: None)
    assert all(o.wall_time_s >= 0.0 for o in report.outcomes)


def test_unisolated_run_raises_experiment_error():
    executed = []
    with pytest.raises(ExperimentError) as excinfo:
        run_experiments(_jobs(executed), emit=lambda _: None, isolate=False)
    assert excinfo.value.name == "expbad"
    assert isinstance(excinfo.value.cause, RuntimeError)
    assert executed == ["a", "bad"]  # stopped at the failure


def test_all_ok_report():
    report = run_experiments(
        [("one", "only", lambda: "fine")], emit=lambda _: None
    )
    assert report.all_ok
    assert "1/1 experiments succeeded" in report.format()


def test_stage_seconds_empty_while_tracing_disabled():
    report = run_experiments(
        [("one", "only", lambda: "fine")], emit=lambda _: None
    )
    assert report.outcomes[0].stage_seconds == {}


def test_stage_breakdown_from_spans_when_tracing_enabled():
    telemetry().enable()

    def staged():
        with span("stage.example"):
            sum(range(10_000))
        return "done"

    report = run_experiments(
        [("one", "staged experiment", staged)], emit=lambda _: None
    )
    stage_seconds = report.outcomes[0].stage_seconds
    assert "stage.example" in stage_seconds
    assert stage_seconds["stage.example"] > 0.0
    # experiment.* spans duplicate the wall time and are excluded.
    assert not any(name.startswith("experiment.") for name in stage_seconds)
    assert "spans: stage.example=" in report.format()


def test_stage_breakdown_is_per_experiment():
    telemetry().enable()

    def first():
        with span("stage.shared"):
            pass
        return "one"

    def second():
        with span("stage.other"):
            pass
        return "two"

    report = run_experiments(
        [("a", "first", first), ("b", "second", second)], emit=lambda _: None
    )
    assert "stage.shared" in report.outcomes[0].stage_seconds
    assert "stage.shared" not in report.outcomes[1].stage_seconds
    assert "stage.other" in report.outcomes[1].stage_seconds
