"""Run-record persistence: write, load, latest, and pretty-print."""

from __future__ import annotations

import json

import pytest

from repro.runtime.records import (
    RUN_RECORD_SCHEMA_VERSION,
    RunRecord,
    format_run_record,
    latest_run_record_path,
    load_run_record,
    write_run_record,
)


def _record(name="fig7", timestamp="20260101T000000"):
    return RunRecord(
        name=name,
        timestamp=timestamp,
        config={"experiment": name, "preset": "fast", "seed": 0},
        metrics={"cache.hit": {"type": "counter", "value": 2}},
        spans={"train.fit": {"count": 1, "total_s": 1.5, "mean_s": 1.5}},
        outcome={"status": "ok", "experiments": [{"name": name, "ok": True}]},
        git_revision="abc1234",
    )


def test_round_trip(tmp_path):
    record = _record()
    path = write_run_record(record, tmp_path)
    assert path.name == "20260101T000000-fig7.json"
    loaded = load_run_record(path)
    assert loaded == record
    # On-disk payload is plain JSON with the schema version embedded.
    payload = json.loads(path.read_text())
    assert payload["schema_version"] == RUN_RECORD_SCHEMA_VERSION


def test_collision_gets_numeric_suffix(tmp_path):
    write_run_record(_record(), tmp_path)
    second = write_run_record(_record(), tmp_path)
    assert second.name == "20260101T000000-fig7.1.json"


def test_unsafe_experiment_names_are_sanitized(tmp_path):
    path = write_run_record(_record(name="../evil name"), tmp_path)
    assert path.parent == tmp_path
    assert "/" not in path.name.replace(".json", "")
    assert " " not in path.name


def test_rejects_other_schema_versions(tmp_path):
    path = write_run_record(_record(), tmp_path)
    payload = json.loads(path.read_text())
    payload["schema_version"] = RUN_RECORD_SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="schema version"):
        load_run_record(path)


def test_load_tolerates_unknown_keys(tmp_path):
    path = write_run_record(_record(), tmp_path)
    payload = json.loads(path.read_text())
    payload["future_field"] = {"x": 1}
    path.write_text(json.dumps(payload))
    assert load_run_record(path).name == "fig7"


def test_latest_run_record_path(tmp_path):
    assert latest_run_record_path(tmp_path / "missing") is None
    write_run_record(_record(timestamp="20260101T000000"), tmp_path)
    newest = write_run_record(_record(timestamp="20260102T000000"), tmp_path)
    assert latest_run_record_path(tmp_path) == newest


def test_timestamp_and_revision_autofill(monkeypatch, tmp_path):
    record = RunRecord(name="x")
    assert record.timestamp  # strftime-filled
    assert record.git_revision  # "unknown" at worst
    path = write_run_record(record, tmp_path)
    assert load_run_record(path).timestamp == record.timestamp


def test_format_run_record_mentions_everything():
    text = format_run_record(_record())
    assert "run record: fig7" in text
    assert "ok (1/1 experiments ok)" in text
    assert "cache.hit" in text
    assert "train.fit" in text
    assert "abc1234" in text


def test_format_failed_outcome():
    record = _record()
    record.outcome = {"status": "failed", "error": "ValueError: boom"}
    text = format_run_record(record)
    assert "failed" in text
    assert "ValueError: boom" in text


def test_format_renders_histogram_quantiles():
    """Serving latency histograms render as a le-bucket quantile summary
    (count/mean/p50/p95/p99), not a raw bucket dict."""
    from repro.runtime.telemetry import Histogram

    histogram = Histogram("serve.request_latency_s", (0.01, 0.1, 1.0))
    for value in (0.02, 0.03, 0.05, 0.07, 0.5):
        histogram.observe(value)
    record = RunRecord(
        name="infer",
        metrics={"serve.request_latency_s": histogram.snapshot()},
        outcome={"status": "ok"},
    )
    text = format_run_record(record)
    line = next(
        l for l in text.splitlines() if "serve.request_latency_s" in l
    )
    assert "count=5" in line
    for marker in ("mean=", "p50=", "p95=", "p99="):
        assert marker in line
    assert "buckets" not in line


def test_format_tolerates_bare_scalar_metrics():
    """Chaos run records store plain counter values, not snapshots."""
    record = RunRecord(
        name="chaos",
        metrics={"fleet.replica_deaths": 1, "fleet.respawns_total": 2},
        outcome={"status": "ok"},
    )
    text = format_run_record(record)
    line = next(
        l for l in text.splitlines() if "fleet.replica_deaths" in l
    )
    assert line.split()[-1] == "1"


def test_format_histogram_empty_skips_quantiles():
    from repro.runtime.telemetry import Histogram

    snap = Histogram("empty", (1.0,)).snapshot()
    record = RunRecord(name="x", metrics={"empty": snap}, outcome={})
    line = next(
        l for l in format_run_record(record).splitlines() if "empty" in l
    )
    assert "count=0" in line
    assert "p50" not in line


def test_quantile_from_buckets_interpolates():
    from repro.runtime.telemetry import Histogram, quantile_from_buckets

    histogram = Histogram("h", (1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.6, 3.0, 10.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    # Median rank (2.5 of 5) lands in the (1, 2] bucket.
    assert 1.0 < quantile_from_buckets(snap, 0.5) <= 2.0
    # Overflow ranks return the last finite bound, not infinity.
    assert quantile_from_buckets(snap, 1.0) == 4.0
    assert quantile_from_buckets(snap, 0.0) == 0.0
    with pytest.raises(ValueError):
        quantile_from_buckets(snap, 1.5)


def test_quantile_from_buckets_empty_snapshot():
    from repro.runtime.telemetry import quantile_from_buckets

    assert quantile_from_buckets({"count": 0, "buckets": {}}, 0.5) == 0.0
