"""Chaos suite: sweeps under worker crashes, hangs, and delivered signals.

These tests drive the real CLI (stubbed experiment registry) end to end:
a parallel sweep keeps going while one experiment's worker keeps dying, a
SIGINT/SIGTERM mid-sweep flushes the journal and exits 130 with a partial
failure report, and ``--resume`` then finishes only the remaining work.
"""

import json
import multiprocessing
import os
import signal
import sys
import time
from pathlib import Path

import pytest

from repro import cli
from repro.runtime.faults import CrashingTask, FlakyTask

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos tests assume the fork start method",
)


def _ok_experiment(ctx):
    return "stub-ok"


def _read_journal(path):
    entries = {}
    for line in Path(path).read_text().splitlines():
        record = json.loads(line)
        if "key" in record:
            entries[record["key"]] = record
    return entries


def _latest_run_record(runs_dir):
    records = sorted(Path(runs_dir).glob("*.json"))
    assert records, f"no run records in {runs_dir}"
    return json.loads(records[-1].read_text())


class TestParallelChaosSweep:
    def test_sweep_survives_crashing_and_flaky_experiments(self, tmp_path, monkeypatch):
        registry = {
            "ok1": ("stub ok", _ok_experiment),
            "crashy": (
                "stub crasher",
                CrashingTask(str(tmp_path / "crash-counter"), crash_attempts=99, exit_code=3),
            ),
            "flaky": (
                "stub flaky",
                FlakyTask(str(tmp_path / "flaky-counter"), fail_attempts=1),
            ),
            "ok2": ("stub ok", _ok_experiment),
        }
        monkeypatch.setattr(cli, "EXPERIMENTS", registry)
        journal = tmp_path / "journal.jsonl"
        report_path = tmp_path / "report.txt"
        rc = cli.main([
            "-q", "run", "all", "--workers", "2", "--no-cache",
            "--journal", str(journal),
            "--runs-dir", str(tmp_path / "runs"),
            "--report", str(report_path),
        ])
        # The crasher fails terminally -> nonzero; but the sweep finished.
        assert rc == 1

        entries = _read_journal(journal)
        assert entries["ok1"]["status"] == "done"
        assert entries["ok2"]["status"] == "done"
        assert entries["crashy"]["status"] == "failed"
        assert entries["crashy"]["attempts"] >= 2  # retried on fresh workers
        assert entries["flaky"]["status"] == "done"
        assert entries["flaky"]["attempts"] == 2  # recovered after one retry

        report = report_path.read_text()
        assert "FAILED crashy" in report
        assert "3/4 experiments succeeded" in report

        record = _latest_run_record(tmp_path / "runs")
        assert record["outcome"]["status"] == "failed"
        by_name = {e["name"]: e for e in record["outcome"]["experiments"]}
        assert by_name["crashy"]["ok"] is False
        assert by_name["flaky"]["ok"] is True


def _interruptible_sweep_child(journal, runs_dir, report, ready_path):
    """Child process: run a stubbed sweep whose second experiment hangs."""

    def slow(ctx):
        Path(ready_path).touch()
        time.sleep(60)
        return "never-returned"

    cli.EXPERIMENTS = {
        "fast1": ("stub fast", _ok_experiment),
        "slow": ("stub slow", slow),
        "fast2": ("stub fast", _ok_experiment),
    }
    rc = cli.main([
        "-q", "run", "all", "--no-cache",
        "--journal", journal, "--runs-dir", runs_dir, "--report", report,
    ])
    sys.exit(rc)


class TestSignalHandling:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_mid_sweep_flushes_journal_and_exits_130(self, tmp_path, signum):
        journal = tmp_path / "journal.jsonl"
        runs_dir = tmp_path / "runs"
        report = tmp_path / "report.txt"
        ready = tmp_path / "slow-started"
        context = multiprocessing.get_context("fork")
        child = context.Process(
            target=_interruptible_sweep_child,
            args=(str(journal), str(runs_dir), str(report), str(ready)),
        )
        child.start()
        try:
            deadline = time.monotonic() + 30.0
            while not ready.exists():
                assert time.monotonic() < deadline, "slow experiment never started"
                assert child.is_alive(), "sweep died before the interrupt"
                time.sleep(0.02)
            os.kill(child.pid, signum)
            child.join(timeout=30.0)
        finally:
            if child.is_alive():  # pragma: no cover - cleanup on failure
                child.kill()
                child.join()
        assert child.exitcode == 130

        # The finished experiment is journaled; the interrupted one is not.
        entries = _read_journal(journal)
        assert entries["fast1"]["status"] == "done"
        assert "slow" not in entries
        assert "fast2" not in entries

        # Partial failure report and run record were still written.
        assert "fast1" in report.read_text()
        record = _latest_run_record(runs_dir)
        assert record["outcome"]["status"] == "interrupted"
        names = [e["name"] for e in record["outcome"]["experiments"]]
        assert names == ["fast1"]

    def test_resume_skips_journaled_experiments(self, tmp_path, monkeypatch, capsys):
        journal = tmp_path / "journal.jsonl"
        runs_dir = tmp_path / "runs"
        ready = tmp_path / "slow-started"
        context = multiprocessing.get_context("fork")
        child = context.Process(
            target=_interruptible_sweep_child,
            args=(str(journal), str(runs_dir), str(tmp_path / "r.txt"), str(ready)),
        )
        child.start()
        try:
            deadline = time.monotonic() + 30.0
            while not ready.exists():
                assert time.monotonic() < deadline
                time.sleep(0.02)
            os.kill(child.pid, signal.SIGINT)
            child.join(timeout=30.0)
        finally:
            if child.is_alive():  # pragma: no cover - cleanup on failure
                child.kill()
                child.join()
        assert child.exitcode == 130

        # Resume with the hang healed: only the unfinished experiments run.
        calls = []

        def healed_slow(ctx):
            calls.append("slow")
            return "healed"

        monkeypatch.setattr(cli, "EXPERIMENTS", {
            "fast1": ("stub fast", _fail_if_called),
            "slow": ("stub slow", healed_slow),
            "fast2": ("stub fast", _ok_experiment),
        })
        rc = cli.main([
            "-q", "run", "all", "--no-cache", "--resume",
            "--journal", str(journal), "--runs-dir", str(runs_dir),
        ])
        assert rc == 0
        assert calls == ["slow"]
        out = capsys.readouterr().out
        assert "fast1 resumed from journal" in out
        entries = _read_journal(journal)
        assert {entries[k]["status"] for k in ("fast1", "slow", "fast2")} == {"done"}

    def test_resume_refuses_mismatched_campaign(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            cli, "EXPERIMENTS", {"only": ("stub", _ok_experiment)}
        )
        journal = tmp_path / "journal.jsonl"
        rc = cli.main([
            "-q", "run", "all", "--no-cache",
            "--journal", str(journal), "--runs-dir", str(tmp_path / "runs"),
        ])
        assert rc == 0
        # Same journal, different campaign (seed changed): refuse, exit 2.
        rc = cli.main([
            "-q", "run", "all", "--no-cache", "--resume", "--seed", "1",
            "--journal", str(journal), "--runs-dir", str(tmp_path / "runs"),
        ])
        assert rc == 2


def _fail_if_called(ctx):  # pragma: no cover - would mean resume is broken
    raise AssertionError("journaled experiment was re-run despite --resume")
