"""Numeric boundary guards."""

import numpy as np
import pytest

from repro.runtime.errors import SimulationError
from repro.runtime.guards import all_finite, count_nonfinite, ensure_finite


def test_count_nonfinite_floats():
    arr = np.array([1.0, np.nan, np.inf, -np.inf, 0.0])
    assert count_nonfinite(arr) == 3


def test_count_nonfinite_complex():
    arr = np.array([1 + 1j, np.nan + 0j, 1j * np.inf])
    assert count_nonfinite(arr) == 2


def test_count_nonfinite_integer_arrays_are_always_finite():
    assert count_nonfinite(np.arange(10)) == 0
    assert all_finite(np.arange(10))


def test_ensure_finite_passes_clean_arrays_through():
    arr = np.ones((3, 3))
    assert ensure_finite(arr, "clean") is arr


def test_ensure_finite_raises_simulation_error_by_default():
    arr = np.array([1.0, np.nan])
    with pytest.raises(SimulationError, match="1/2 non-finite"):
        ensure_finite(arr, "poisoned cubes")


def test_ensure_finite_message_names_the_boundary():
    with pytest.raises(SimulationError, match="poisoned cubes"):
        ensure_finite(np.array([np.inf]), "poisoned cubes")
