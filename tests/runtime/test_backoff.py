"""RetryPolicy schedule math and the retry_call helper."""

import pytest

from repro.runtime.backoff import TRANSIENT_IO_POLICY, RetryPolicy, retry_call


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=10.0, jitter=0.0)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.4)

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=10.0, max_delay_s=2.0, jitter=0.0)
        assert policy.delay_s(5) == pytest.approx(2.0)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, max_delay_s=1.0, jitter=0.25)
        for attempt in range(1, 6):
            for seed in range(5):
                delay = policy.delay_s(attempt, seed=seed)
                assert delay == policy.delay_s(attempt, seed=seed)
                assert 0.75 <= delay <= 1.25

    def test_jitter_desynchronizes_seeds(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.25)
        delays = {policy.delay_s(1, seed=seed) for seed in range(8)}
        assert len(delays) > 1

    def test_invalid_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(0)

    def test_retries_remaining(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.retries_remaining(1)
        assert policy.retries_remaining(2)
        assert not policy.retries_remaining(3)

    def test_transient_io_policy_is_quick(self):
        assert TRANSIENT_IO_POLICY.max_attempts == 3
        assert TRANSIENT_IO_POLICY.delay_s(2, seed=0) <= 0.25 * 1.25


class TestRetryCall:
    def test_success_needs_no_retry(self):
        sleeps = []
        assert retry_call(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_recovers_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        sleeps = []
        value = retry_call(
            flaky, RetryPolicy(max_attempts=3, jitter=0.0), sleep=sleeps.append
        )
        assert value == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential growth

    def test_exhaustion_reraises_original(self):
        def always_fails():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            retry_call(
                always_fails,
                RetryPolicy(max_attempts=2, jitter=0.0),
                sleep=lambda _: None,
            )

    def test_non_matching_exception_propagates_immediately(self):
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise ValueError("not retriable")

        with pytest.raises(ValueError):
            retry_call(fails, retry_on=OSError, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_should_retry_predicate_vetoes(self):
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise OSError("terminal")

        with pytest.raises(OSError):
            retry_call(
                fails,
                retry_on=OSError,
                should_retry=lambda exc: "transient" in str(exc),
                sleep=lambda _: None,
            )
        assert calls["n"] == 1

    def test_on_retry_observes_each_scheduled_retry(self):
        calls = {"n": 0}
        observed = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        retry_call(
            flaky,
            RetryPolicy(max_attempts=3, jitter=0.0),
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: observed.append((attempt, str(exc))),
        )
        assert observed == [(1, "transient"), (2, "transient")]
