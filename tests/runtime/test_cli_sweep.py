"""`run all` isolation at the CLI level: one failing experiment must not
kill the sweep, and the failure report must name it with its traceback."""

import pytest

import repro.cli as cli
from repro.runtime.faults import failing_experiment


@pytest.fixture()
def stub_experiments(monkeypatch):
    """Replace the real experiment registry with three instant stubs."""
    executed = []

    def make_runner(name):
        def runner(ctx):
            executed.append(name)
            return f"{name} rows"

        return runner

    registry = {
        name: (f"{name} description", make_runner(name))
        for name in ("stub1", "stub2", "stub3")
    }
    monkeypatch.setattr(cli, "EXPERIMENTS", registry)
    return registry, executed


def test_run_all_isolates_failures(stub_experiments, capsys):
    registry, executed = stub_experiments
    with failing_experiment(registry, "stub2", message="stub2 exploded"):
        exit_code = cli.main(["run", "all"])
    out = capsys.readouterr().out
    assert exit_code == 1  # non-zero only after the full sweep
    assert executed == ["stub1", "stub3"]  # the sweep continued past stub2
    assert "stub1 rows" in out
    assert "stub3 rows" in out
    assert "2/3 experiments succeeded" in out
    assert "FAILED stub2" in out
    assert "stub2 exploded" in out
    assert "Traceback" in out


def test_run_all_clean_sweep_exits_zero(stub_experiments, capsys):
    _, executed = stub_experiments
    assert cli.main(["run", "all"]) == 0
    assert executed == ["stub1", "stub2", "stub3"]
    assert "3/3 experiments succeeded" in capsys.readouterr().out


def test_run_all_writes_report_file(stub_experiments, tmp_path):
    registry, _ = stub_experiments
    report_path = tmp_path / "sweep.txt"
    with failing_experiment(registry, "stub1"):
        exit_code = cli.main(["run", "all", "--report", str(report_path)])
    assert exit_code == 1
    content = report_path.read_text()
    assert "FAILED stub1" in content
    assert "injected experiment fault" in content


def test_single_failing_experiment_exits_nonzero(stub_experiments, capsys):
    registry, _ = stub_experiments
    with failing_experiment(registry, "stub2"):
        assert cli.main(["run", "stub2"]) == 1
    captured = capsys.readouterr()
    assert "injected experiment fault" in captured.err


def test_single_experiment_success_exits_zero(stub_experiments, capsys):
    assert cli.main(["run", "stub3"]) == 0
    assert "stub3 rows" in capsys.readouterr().out


def test_verbosity_flags_parse(stub_experiments):
    assert cli.main(["-v", "run", "stub1"]) == 0
    assert cli.main(["-q", "run", "stub1"]) == 0
