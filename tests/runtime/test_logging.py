"""Structured logging configuration and helpers."""

import io
import logging

from repro.runtime.logging import (
    configure_logging,
    format_fields,
    get_logger,
    level_for_verbosity,
    log_event,
)


def test_get_logger_namespaces_under_repro():
    assert get_logger().name == "repro"
    assert get_logger("datasets.cache").name == "repro.datasets.cache"
    assert get_logger("repro.models").name == "repro.models"


def test_level_for_verbosity_mapping():
    assert level_for_verbosity(-1) == logging.ERROR
    assert level_for_verbosity(0) == logging.WARNING
    assert level_for_verbosity(1) == logging.INFO
    assert level_for_verbosity(2) == logging.DEBUG
    assert level_for_verbosity(5) == logging.DEBUG


def test_configure_logging_is_idempotent():
    stream = io.StringIO()
    root = configure_logging(0, stream=stream)
    configure_logging(0, stream=stream)
    configure_logging(0, stream=stream)
    assert len(root.handlers) == 1


def test_messages_respect_level_and_reach_stream():
    stream = io.StringIO()
    configure_logging(1, stream=stream)
    log = get_logger("test.module")
    log.debug("hidden at -v")
    log.info("visible info")
    log.warning("visible warning")
    out = stream.getvalue()
    assert "hidden at -v" not in out
    assert "visible info" in out
    assert "visible warning" in out
    assert "[repro.test.module]" in out
    configure_logging(0)  # restore default for other tests


def test_log_event_appends_fields_in_order():
    assert format_fields(path="/a", reason="x") == "path=/a reason=x"
    stream = io.StringIO()
    configure_logging(0, stream=stream)
    log_event(get_logger("evt"), logging.WARNING, "quarantined", path="/a/b.npz")
    assert "quarantined path=/a/b.npz" in stream.getvalue()
    configure_logging(0)


def test_format_fields_quotes_awkward_values():
    assert format_fields(msg="two words") == 'msg="two words"'
    assert format_fields(empty="") == 'empty=""'
    assert format_fields(tabby="a\tb") == 'tabby="a\tb"'
    assert format_fields(quoted='say "hi"') == 'quoted="say \\"hi\\""'
    assert format_fields(backslash="a\\b c") == 'backslash="a\\\\b c"'
    # Plain values stay unquoted.
    assert format_fields(n=3, path="/a/b.npz") == "n=3 path=/a/b.npz"


def test_timestamps_flag_prefixes_asctime():
    stream = io.StringIO()
    configure_logging(0, stream=stream, timestamps=True)
    get_logger("ts").warning("stamped")
    line = stream.getvalue().splitlines()[0]
    # asctime like "2026-08-05 12:34:56,789" precedes the [name] prefix.
    assert not line.startswith("[repro.ts]")
    assert "[repro.ts] WARNING stamped" in line
    configure_logging(0)


def test_timestamps_env_opt_in(monkeypatch):
    from repro.runtime.logging import TIMESTAMP_ENV

    monkeypatch.setenv(TIMESTAMP_ENV, "1")
    stream = io.StringIO()
    configure_logging(0, stream=stream)
    get_logger("ts.env").warning("stamped")
    assert not stream.getvalue().startswith("[repro.ts.env]")

    monkeypatch.setenv(TIMESTAMP_ENV, "false")
    stream = io.StringIO()
    configure_logging(0, stream=stream)
    get_logger("ts.env").warning("bare")
    assert stream.getvalue().startswith("[repro.ts.env]")
    configure_logging(0)
