"""Structured logging configuration and helpers."""

import io
import logging

from repro.runtime.logging import (
    configure_logging,
    format_fields,
    get_logger,
    level_for_verbosity,
    log_event,
)


def test_get_logger_namespaces_under_repro():
    assert get_logger().name == "repro"
    assert get_logger("datasets.cache").name == "repro.datasets.cache"
    assert get_logger("repro.models").name == "repro.models"


def test_level_for_verbosity_mapping():
    assert level_for_verbosity(-1) == logging.ERROR
    assert level_for_verbosity(0) == logging.WARNING
    assert level_for_verbosity(1) == logging.INFO
    assert level_for_verbosity(2) == logging.DEBUG
    assert level_for_verbosity(5) == logging.DEBUG


def test_configure_logging_is_idempotent():
    stream = io.StringIO()
    root = configure_logging(0, stream=stream)
    configure_logging(0, stream=stream)
    configure_logging(0, stream=stream)
    assert len(root.handlers) == 1


def test_messages_respect_level_and_reach_stream():
    stream = io.StringIO()
    configure_logging(1, stream=stream)
    log = get_logger("test.module")
    log.debug("hidden at -v")
    log.info("visible info")
    log.warning("visible warning")
    out = stream.getvalue()
    assert "hidden at -v" not in out
    assert "visible info" in out
    assert "visible warning" in out
    assert "[repro.test.module]" in out
    configure_logging(0)  # restore default for other tests


def test_log_event_appends_fields_in_order():
    assert format_fields(path="/a", reason="x") == "path=/a reason=x"
    stream = io.StringIO()
    configure_logging(0, stream=stream)
    log_event(get_logger("evt"), logging.WARNING, "quarantined", path="/a/b.npz")
    assert "quarantined path=/a/b.npz" in stream.getvalue()
    configure_logging(0)
