"""WorkerPool: crash isolation, deadlines, retries, determinism, degrade."""

import numpy as np
import pytest

from repro.runtime.backoff import RetryPolicy
from repro.runtime.faults import CrashingTask, FlakyTask, HangingTask
from repro.runtime.pool import (
    PoolConfig,
    PoolTask,
    WorkerPool,
    derive_task_seed,
    run_tasks,
)
from repro.runtime.telemetry import metrics, telemetry

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="pool tests assume the fork start method",
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05, jitter=0.0)


def _square(value):
    return value * value


def _echo_rng(campaign_seed, task_index):
    rng = np.random.default_rng(derive_task_seed(campaign_seed, task_index))
    return rng.random(4).tolist()


def _boom():
    raise RuntimeError("task exploded")


class TestDeriveTaskSeed:
    def test_deterministic(self):
        a = np.random.default_rng(derive_task_seed(7, 3)).random(8)
        b = np.random.default_rng(derive_task_seed(7, 3)).random(8)
        np.testing.assert_array_equal(a, b)

    def test_distinct_per_task_and_campaign(self):
        draws = {
            tuple(np.random.default_rng(derive_task_seed(seed, index)).random(4))
            for seed in (0, 1)
            for index in range(4)
        }
        assert len(draws) == 8


class TestPoolBasics:
    def test_results_are_index_ordered(self):
        tasks = [PoolTask(key=f"t{i}", fn=_square, args=(i,)) for i in range(6)]
        results = run_tasks(tasks, PoolConfig(workers=2, retry=FAST_RETRY))
        assert [r.value for r in results] == [i * i for i in range(6)]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_empty_task_list(self):
        assert run_tasks([], PoolConfig(workers=2)) == []

    def test_serial_path_when_single_worker(self):
        tasks = [PoolTask(key=f"t{i}", fn=_square, args=(i,)) for i in range(3)]
        results = run_tasks(tasks, PoolConfig(workers=1, retry=FAST_RETRY))
        assert [r.value for r in results] == [0, 1, 4]

    def test_parallel_rng_matches_serial(self):
        tasks = [
            PoolTask(key=f"t{i}", fn=_echo_rng, args=(11, i)) for i in range(5)
        ]
        serial = run_tasks(tasks, PoolConfig(workers=1, retry=FAST_RETRY))
        parallel = run_tasks(tasks, PoolConfig(workers=3, retry=FAST_RETRY))
        assert [r.value for r in serial] == [r.value for r in parallel]

    def test_on_result_sees_every_terminal_outcome(self):
        seen = []
        tasks = [PoolTask(key=f"t{i}", fn=_square, args=(i,)) for i in range(4)]
        run_tasks(
            tasks, PoolConfig(workers=2, retry=FAST_RETRY),
            on_result=lambda r: seen.append(r.key),
        )
        assert sorted(seen) == [f"t{i}" for i in range(4)]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(workers=0)
        with pytest.raises(ValueError):
            PoolConfig(task_timeout_s=0.0)
        with pytest.raises(ValueError):
            PoolConfig(start_method="nope")


class TestCrashIsolation:
    def test_crashed_task_is_retried_on_fresh_worker(self, tmp_path):
        metrics().reset()
        crash = CrashingTask(str(tmp_path / "counter"), crash_attempts=1)
        tasks = [
            PoolTask(key="crashy", fn=crash),
            PoolTask(key="ok", fn=_square, args=(3,)),
        ]
        results = run_tasks(tasks, PoolConfig(workers=2, retry=FAST_RETRY))
        assert results[0].ok and results[0].value == "survived"
        assert results[0].attempts == 2
        assert results[1].ok and results[1].value == 9
        assert metrics().counter("pool.worker_deaths").value >= 1
        assert metrics().counter("pool.retries").value >= 1

    def test_persistent_crasher_fails_without_killing_sweep(self, tmp_path):
        metrics().reset()
        crash = CrashingTask(str(tmp_path / "counter"), crash_attempts=99)
        tasks = [
            PoolTask(key="doomed", fn=crash),
            PoolTask(key="ok", fn=_square, args=(4,)),
        ]
        results = run_tasks(tasks, PoolConfig(workers=2, retry=FAST_RETRY))
        assert not results[0].ok
        assert "worker died" in results[0].error
        assert results[0].attempts == FAST_RETRY.max_attempts
        assert results[1].ok and results[1].value == 16
        assert metrics().counter("pool.tasks_failed").value == 1
        assert metrics().counter("pool.tasks_completed").value == 1


class TestDeadlines:
    def test_hanging_task_is_killed_and_retried(self, tmp_path):
        metrics().reset()
        hang = HangingTask(str(tmp_path / "counter"), hang_attempts=1, hang_s=60.0)
        tasks = [PoolTask(key="hangy", fn=hang)]
        results = run_tasks(
            tasks,
            PoolConfig(workers=2, task_timeout_s=0.5, retry=FAST_RETRY),
        )
        assert results[0].ok and results[0].value == "survived"
        assert results[0].attempts == 2
        assert metrics().counter("pool.timeouts").value >= 1

    def test_per_task_timeout_overrides_pool_default(self, tmp_path):
        hang = HangingTask(str(tmp_path / "counter"), hang_attempts=99, hang_s=60.0)
        tasks = [PoolTask(key="hangy", fn=hang, timeout_s=0.3)]
        results = run_tasks(
            tasks,
            PoolConfig(
                workers=2,
                task_timeout_s=120.0,
                retry=RetryPolicy(max_attempts=1),
            ),
        )
        assert not results[0].ok
        assert "deadline" in results[0].error


class TestRetries:
    def test_flaky_exception_recovers_in_place(self, tmp_path):
        flaky = FlakyTask(str(tmp_path / "counter"), fail_attempts=1)
        results = run_tasks(
            [PoolTask(key="flaky", fn=flaky)],
            PoolConfig(workers=2, retry=FAST_RETRY),
        )
        assert results[0].ok and results[0].attempts == 2

    def test_exhausted_retries_keep_last_error(self, tmp_path):
        results = run_tasks(
            [PoolTask(key="boom", fn=_boom)],
            PoolConfig(workers=2, retry=FAST_RETRY),
        )
        assert not results[0].ok
        assert "task exploded" in results[0].error
        assert "RuntimeError" in results[0].traceback
        assert results[0].attempts == FAST_RETRY.max_attempts

    def test_serial_path_retries_identically(self, tmp_path):
        flaky = FlakyTask(str(tmp_path / "counter"), fail_attempts=2)
        results = run_tasks(
            [PoolTask(key="flaky", fn=flaky)],
            PoolConfig(workers=1, retry=FAST_RETRY),
        )
        assert results[0].ok and results[0].attempts == 3


class TestDegradation:
    def test_failed_pool_start_degrades_to_serial(self, monkeypatch):
        metrics().reset()
        monkeypatch.setattr(WorkerPool, "_spawn_worker", lambda self: None)
        tasks = [PoolTask(key=f"t{i}", fn=_square, args=(i,)) for i in range(3)]
        results = run_tasks(tasks, PoolConfig(workers=2, retry=FAST_RETRY))
        assert [r.value for r in results] == [0, 1, 4]
        assert metrics().counter("pool.degraded").value == 1


class TestTelemetry:
    def test_attempt_spans_recorded(self):
        tel = telemetry()
        tel.reset()
        tel.enable()
        try:
            tasks = [PoolTask(key=f"t{i}", fn=_square, args=(i,)) for i in range(3)]
            run_tasks(tasks, PoolConfig(workers=2, retry=FAST_RETRY))
            aggregate = tel.aggregate()
        finally:
            tel.disable()
        assert aggregate["pool.attempt"]["count"] == 3
