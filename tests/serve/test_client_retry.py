"""Client retries: Retry-After honoring, budgets, load-generator counts."""

import threading

import numpy as np
import pytest

from repro.runtime.backoff import RetryPolicy
from repro.serve import (
    EngineConfig,
    ServerConfig,
    build_server,
    predict_with_retry,
    run_load,
)
from repro.serve import client as client_module
from repro.serve.client import _retry_after_s

SEQUENCE = np.zeros((8, 16, 16), dtype=np.float32)
POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=5.0)


def _scripted(responses):
    """A fake ``_request`` yielding canned (status, payload, headers)."""
    calls = []

    def fake(url, body=None, timeout_s=30.0, request_id=None):
        index = min(len(calls), len(responses) - 1)
        calls.append(url)
        response = responses[index]
        if isinstance(response, Exception):
            raise response
        return response

    return fake, calls


def test_retry_honors_server_retry_after(monkeypatch):
    fake, calls = _scripted([
        (503, {"error": {"type": "CircuitOpenError"}}, {"Retry-After": "0.123"}),
        (503, {"error": {"type": "DrainingError"}}, {"Retry-After": "0.456"}),
        (200, {"label": 1, "label_name": "walking"}, {}),
    ])
    monkeypatch.setattr(client_module, "_request", fake)
    sleeps = []
    status, payload, retries = predict_with_retry(
        "http://x", SEQUENCE, policy=POLICY, sleep=sleeps.append
    )
    assert status == 200
    assert payload["label"] == 1
    assert retries == 2
    assert len(calls) == 3
    # The server's hint overrides the policy's computed backoff.
    assert sleeps == [0.123, 0.456]


def test_retry_after_is_capped_by_policy_max_delay(monkeypatch):
    fake, _ = _scripted([
        (429, {"error": {"type": "OverloadError"}}, {"Retry-After": "3600"}),
        (200, {"label": 0, "label_name": "walking"}, {}),
    ])
    monkeypatch.setattr(client_module, "_request", fake)
    sleeps = []
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.2)
    status, _, retries = predict_with_retry(
        "http://x", SEQUENCE, policy=policy, sleep=sleeps.append
    )
    assert status == 200 and retries == 1
    assert sleeps == [0.2]


def test_non_retryable_status_returns_immediately(monkeypatch):
    fake, calls = _scripted([
        (404, {"error": {"type": "ModelNotFoundError"}}, {}),
    ])
    monkeypatch.setattr(client_module, "_request", fake)
    status, payload, retries = predict_with_retry(
        "http://x", SEQUENCE, policy=POLICY, sleep=lambda _s: None
    )
    assert status == 404
    assert retries == 0
    assert len(calls) == 1


def test_budget_exhaustion_returns_last_shed_status(monkeypatch):
    fake, calls = _scripted([
        (503, {"error": {"type": "CircuitOpenError"}}, {}),
    ])
    monkeypatch.setattr(client_module, "_request", fake)
    status, payload, retries = predict_with_retry(
        "http://x", SEQUENCE, policy=POLICY, sleep=lambda _s: None
    )
    assert status == 503
    assert retries == POLICY.max_attempts - 1
    assert len(calls) == POLICY.max_attempts


def test_transport_errors_retry_then_reraise(monkeypatch):
    fake, calls = _scripted([ConnectionRefusedError("nope")])
    monkeypatch.setattr(client_module, "_request", fake)
    with pytest.raises(OSError):
        predict_with_retry(
            "http://x", SEQUENCE, policy=POLICY, sleep=lambda _s: None
        )
    assert len(calls) == POLICY.max_attempts


def test_transport_error_then_success(monkeypatch):
    fake, _ = _scripted([
        ConnectionResetError("mid-respawn"),
        (200, {"label": 2, "label_name": "sitting"}, {}),
    ])
    monkeypatch.setattr(client_module, "_request", fake)
    status, payload, retries = predict_with_retry(
        "http://x", SEQUENCE, policy=POLICY, sleep=lambda _s: None
    )
    assert status == 200 and retries == 1


def test_retry_after_header_parsing():
    assert _retry_after_s({"Retry-After": "2.5"}) == 2.5
    assert _retry_after_s({"retry-after": "1"}) == 1.0
    assert _retry_after_s({"Retry-After": "soon"}) is None
    assert _retry_after_s({}) is None
    assert _retry_after_s({"Retry-After": "-3"}) == 0.0


def test_burst_with_retries_recovers_shed_requests(
    published_registry, micro_dataset
):
    """Against a tiny admission queue, a burst sheds 429s — and the
    retrying client wins them all back within its budget."""
    registry, _ = published_registry
    server = build_server(
        registry.root,
        EngineConfig(
            max_batch=4, max_delay_ms=5.0, queue_capacity=2,
            screen_by_default=False,
        ),
        ServerConfig(port=0),
    )
    with server:
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            summary = run_load(
                server.url, micro_dataset.x[:2], requests=12, burst=True,
                retry=True,
                retry_policy=RetryPolicy(
                    max_attempts=10, base_delay_s=0.05, max_delay_s=0.2
                ),
            )
        finally:
            server.shutdown()
            thread.join()
    assert summary["ok"] == 12
    assert summary["retries"] > 0
    assert summary["recovered_after_retry"] > 0


def test_steady_load_reports_zero_retries(live_server, micro_dataset):
    summary = run_load(
        live_server.url, micro_dataset.x[:4], requests=8, concurrency=4,
        screen=False, retry=True,
    )
    assert summary["ok"] == 8
    assert summary["retries"] == 0
    assert summary["recovered_after_retry"] == 0
