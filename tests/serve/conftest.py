"""Serving-stack fixtures: a published micro registry + live server.

The registry is session-scoped (publishing trains nothing — it reuses
the shared ``trained_micro_model`` — but the bundled trigger detector
does a short fit, worth amortizing).  Engines and servers are
function-scoped so every test starts with a cold model cache and empty
queue.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets.activities import ACTIVITY_NAMES
from repro.datasets.dataset import HeatmapDataset
from repro.defense.detector import DetectorConfig, TriggerDetector
from repro.models.trainer import TrainingConfig
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ModelRegistry,
    ServerConfig,
    build_server,
)

NUM_FRAMES = 8


def add_blob(x: np.ndarray) -> np.ndarray:
    """A bright, persistent square return at fixed range/angle cells —
    the tests' stand-in for a strapped-on reflector trigger."""
    out = np.array(x, copy=True, dtype=np.float32)
    out[..., 3:6, 3:6] += 0.8
    return out


@pytest.fixture(scope="session")
def micro_detector(micro_dataset) -> TriggerDetector:
    """A briefly-trained detector that separates blob-triggered samples."""
    detector = TriggerDetector(
        (16, 16),
        NUM_FRAMES,
        DetectorConfig(
            conv_channels=(4, 8),
            feature_dim=12,
            lstm_hidden=16,
            dropout=0.0,
            training=TrainingConfig(
                epochs=6, batch_size=12, learning_rate=3e-3,
                validation_fraction=0.0, seed=0,
            ),
        ),
        np.random.default_rng(5),
    )
    triggered = HeatmapDataset(
        add_blob(micro_dataset.x), micro_dataset.y, micro_dataset.meta
    )
    detector.fit(micro_dataset, triggered)
    return detector


@pytest.fixture(scope="session")
def published_registry(
    tmp_path_factory, trained_micro_model, micro_detector
) -> "tuple[ModelRegistry, str]":
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    model_id = registry.publish(
        trained_micro_model,
        ACTIVITY_NAMES,
        NUM_FRAMES,
        detector=micro_detector,
    )
    return registry, model_id


@pytest.fixture()
def engine(published_registry) -> InferenceEngine:
    registry, _ = published_registry
    with InferenceEngine(
        registry, EngineConfig(max_batch=4, max_delay_ms=25.0)
    ) as running:
        yield running


@pytest.fixture()
def live_server(published_registry):
    """A real ThreadingHTTPServer on an ephemeral port, torn down after."""
    registry, _ = published_registry
    server = build_server(
        registry.root,
        EngineConfig(max_batch=4, max_delay_ms=5.0),
        ServerConfig(port=0),
    )
    with server:
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        yield server
        server.shutdown()
        thread.join()
