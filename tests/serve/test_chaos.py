"""Chaos harness: fault drills against a live fleet-backed server."""

import threading

import pytest

from repro.runtime.backoff import RetryPolicy
from repro.serve import (
    ChaosPlan,
    EngineConfig,
    FleetConfig,
    ServerConfig,
    assert_recovery,
    build_server,
    run_chaos,
)


@pytest.fixture()
def fleet_server(published_registry):
    """A 3-replica fleet behind the HTTP front door on an ephemeral port."""
    registry, _ = published_registry
    config = FleetConfig(
        replicas=3,
        engine=EngineConfig(
            max_batch=4, max_delay_ms=2.0, screen_by_default=False
        ),
        heartbeat_interval_s=0.05,
        heartbeat_miss_dead=6,
        respawn=RetryPolicy(max_attempts=5, base_delay_s=0.05, max_delay_s=0.25),
        reload_poll_s=0.2,
    )
    server = build_server(registry.root, None, ServerConfig(port=0), config)
    with server:
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        yield server
        server.shutdown()
        thread.join()


def test_plan_validation():
    with pytest.raises(ValueError, match="fault"):
        ChaosPlan(fault="meteor")
    with pytest.raises(ValueError, match="requests"):
        ChaosPlan(requests=0)


def test_kill_drill_meets_the_recovery_slo(fleet_server, micro_dataset):
    """The acceptance drill: kill -9 one replica mid-load; every request
    still succeeds (retries win back the in-flight 503s), the replica
    respawns as a new pid, and the post-recovery probe is clean."""
    plan = ChaosPlan(
        fault="kill",
        target_slot=0,
        inject_after_s=0.15,
        requests=60,
        concurrency=6,
        post_requests=20,
        recovery_ready=3,
    )
    report = run_chaos(
        fleet_server.engine, fleet_server.url, micro_dataset.x[:4], plan
    )
    assert_recovery(report)
    assert report["load"]["ok"] == plan.requests
    assert report["load"]["deadline_504"] == 0
    assert report["recovery"]["recovered"] is True
    assert report["recovery"]["respawned"] is True
    assert report["recovery"]["pid_after"] != report["recovery"]["pid_before"]
    assert report["post"]["ok"] == plan.post_requests
    assert report["post"]["latency_ms"]["p99"] > 0.0
    assert report["fleet_counters"].get("fleet.replica_deaths", 0) >= 1
    assert report["fleet"]["ready"] == 3


def test_slow_fault_degrades_without_losing_requests(
    fleet_server, micro_dataset
):
    plan = ChaosPlan(
        fault="slow",
        target_slot=1,
        slow_ms=150.0,
        inject_after_s=0.1,
        requests=30,
        concurrency=6,
        post_requests=0,
    )
    report = run_chaos(
        fleet_server.engine, fleet_server.url, micro_dataset.x[:4], plan
    )
    assert_recovery(report)
    assert report["load"]["ok"] == plan.requests
    assert report["recovery"]["respawned"] is None  # slow != dead


def test_assert_recovery_rejects_lossy_reports():
    report = {
        "plan": {"requests": 10, "post_requests": 0, "target_slot": 0},
        "load": {
            "ok": 8, "deadline_504": 1, "other_errors": 1,
            "statuses": {"200": 8, "503": 1, "504": 1},
        },
        "recovery": {
            "recovered": False, "wait_s": 30.0, "respawned": False,
            "pid_before": 1, "pid_after": 1,
        },
        "post": None,
    }
    with pytest.raises(AssertionError, match="chaos SLO violated"):
        assert_recovery(report)
