"""CLI verbs: ``repro publish``, ``repro serve``, ``repro infer``."""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.serve import ModelRegistry


def test_parser_registers_serving_verbs():
    parser = build_parser()
    publish = parser.parse_args(["publish", "--registry", "r"])
    assert publish.command == "publish"
    assert publish.preset == "fast"
    assert not publish.detector

    serve = parser.parse_args(["serve", "--registry", "r", "--port", "0"])
    assert serve.command == "serve"
    assert serve.max_batch == 8
    assert serve.queue_capacity == 64

    infer = parser.parse_args(["infer", "--url", "http://x", "--burst"])
    assert infer.command == "infer"
    assert infer.burst
    assert infer.screen is None


def test_parser_registers_fleet_and_chaos_flags():
    parser = build_parser()
    serve = parser.parse_args(["serve", "--registry", "r"])
    assert serve.replicas == 1  # single in-process engine by default
    fleet = parser.parse_args(
        ["serve", "--registry", "r", "--replicas", "3"]
    )
    assert fleet.replicas == 3

    publish = parser.parse_args(["publish", "--registry", "r", "--gc"])
    assert publish.gc and not publish.gc_dry_run

    infer = parser.parse_args(["infer", "--retry"])
    assert infer.retry and not infer.chaos

    chaos = parser.parse_args([
        "infer", "--chaos", "--registry", "r", "--chaos-fault", "slow",
        "--chaos-replicas", "2", "--chaos-slot", "1",
    ])
    assert chaos.chaos
    assert chaos.registry == "r"
    assert chaos.chaos_fault == "slow"
    assert chaos.chaos_replicas == 2
    assert chaos.chaos_slot == 1


def test_registry_flag_is_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["publish"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve"])


def _micro_preset():
    from repro.eval import FAST

    from ..conftest import make_micro_generation_config

    return FAST.scaled(
        generation=make_micro_generation_config(),
        num_frames=8,
        samples_per_class=4,
        attacker_samples_per_class=4,
        epochs=1,
    )


def test_publish_trains_and_publishes_with_detector(
    monkeypatch, tmp_path, capsys
):
    """`repro publish --detector` leaves a loadable screened artifact."""
    monkeypatch.setattr(
        "repro.eval.presets.preset_by_name", lambda name: _micro_preset()
    )
    registry_dir = tmp_path / "registry"
    assert main([
        "-q", "publish", "--registry", str(registry_dir),
        "--detector", "--detector-epochs", "1",
        "--alias", "latest", "--alias", "canary",
    ]) == 0
    model_id = capsys.readouterr().out.strip()
    assert model_id.startswith("m-")
    registry = ModelRegistry(registry_dir)
    assert registry.resolve("latest") == model_id
    assert registry.resolve("canary") == model_id
    loaded = registry.load(model_id)
    assert loaded.detector is not None
    assert loaded.sequence_shape == (8, 16, 16)
    assert loaded.manifest["preprocessing"]["preset"] == "fast"


def test_infer_cli_end_to_end(live_server, tmp_path, monkeypatch, capsys):
    """`repro infer` drives a live server and writes a percentile record."""
    runs_dir = tmp_path / "infer-runs"
    assert main([
        "-q", "infer", "--url", live_server.url,
        "--requests", "10", "--concurrency", "4", "--no-screen",
        "--runs-dir", str(runs_dir),
    ]) == 0
    out = capsys.readouterr().out
    assert "infer: 10 requests" in out
    assert "p50" in out and "p99" in out
    assert "throughput" in out
    records = sorted(runs_dir.glob("*-infer.json"))
    assert len(records) == 1
    record = json.loads(records[0].read_text())
    assert record["outcome"]["ok"] == 10
    assert record["outcome"]["latency_ms"]["p50"] > 0.0
    assert record["outcome"]["throughput_rps"] > 0.0
    # The server's metrics snapshot rides along in the record.
    assert record["metrics"]["serve.request_latency_s"]["count"] >= 10
    assert record["config"]["url"] == live_server.url


def test_infer_cli_with_input_file(live_server, tmp_path, capsys):
    sequences = np.random.default_rng(0).random((3, 8, 16, 16))
    path = tmp_path / "sequences.npy"
    np.save(path, sequences)
    assert main([
        "-q", "infer", "--url", live_server.url, "--requests", "3",
        "--input", str(path), "--runs-dir", str(tmp_path / "runs"),
    ]) == 0
    assert "infer: 3 requests" in capsys.readouterr().out


def test_infer_cli_unreachable_server(tmp_path):
    assert main([
        "-q", "infer", "--url", "http://127.0.0.1:1",
        "--requests", "1", "--runs-dir", str(tmp_path),
    ]) == 1


def test_infer_chaos_cli(published_registry, tmp_path, capsys):
    """`repro infer --chaos` self-hosts a fleet, survives a kill -9, and
    writes a chaos run record."""
    registry, _ = published_registry
    runs_dir = tmp_path / "chaos-runs"
    assert main([
        "-q", "infer", "--chaos", "--registry", str(registry.root),
        "--chaos-replicas", "2", "--requests", "24", "--concurrency", "4",
        "--runs-dir", str(runs_dir),
    ]) == 0
    out = capsys.readouterr().out
    assert "chaos: ok" in out
    records = sorted(runs_dir.glob("*-chaos.json"))
    assert len(records) == 1
    record = json.loads(records[0].read_text())
    assert record["outcome"]["status"] == "ok"
    assert record["outcome"]["load"]["ok"] == 24
    assert record["outcome"]["recovery"]["recovered"] is True
    assert record["config"]["fault"] == "kill"
    assert record["metrics"].get("fleet.replica_deaths", 0) >= 1


def test_infer_chaos_requires_registry(tmp_path):
    assert main([
        "-q", "infer", "--chaos", "--requests", "4",
        "--runs-dir", str(tmp_path),
    ]) == 2


def test_serve_cli_subprocess_round_trip(published_registry, tmp_path):
    """`repro serve` as a real process: prints its URL, answers requests,
    exits cleanly on SIGTERM."""
    registry, _ = published_registry
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--registry", str(registry.root), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        line = ""
        deadline = time.time() + 60
        while time.time() < deadline:
            line = process.stdout.readline()
            if "serving registry" in line:
                break
        assert "serving registry" in line, line
        url = line.strip().rsplit(" at ", 1)[1]

        from repro.serve import fetch_json

        health = fetch_json(url, "/healthz")
        assert health["status"] == "ok"
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
