"""Replica fleet: routing, supervision, respawn, drain, hot reload."""

import os
import threading
import time

import numpy as np
import pytest

from repro.datasets.activities import ACTIVITY_NAMES
from repro.models import CNNLSTMClassifier
from repro.runtime.backoff import RetryPolicy
from repro.runtime.errors import (
    CircuitOpenError,
    DrainingError,
    ModelNotFoundError,
    RegistryError,
    ReplicaDiedError,
    ServeError,
)
from repro.runtime.telemetry import metrics
from repro.serve import EngineConfig, FleetConfig, ModelRegistry, ReplicaFleet
from repro.serve.fleet import REPLICA_STATES, ReplicaState, _rebuild_error

from ..conftest import MICRO_MODEL_CONFIG
from .conftest import NUM_FRAMES


def fast_config(replicas: int, **overrides) -> FleetConfig:
    """Test-speed supervision: 50 ms heartbeats, sub-second respawn."""
    settings = dict(
        replicas=replicas,
        engine=EngineConfig(
            max_batch=4, max_delay_ms=2.0, screen_by_default=False
        ),
        heartbeat_interval_s=0.05,
        heartbeat_miss_dead=6,
        respawn=RetryPolicy(
            max_attempts=4, base_delay_s=0.05, max_delay_s=0.25
        ),
        reload_poll_s=0.1,
    )
    settings.update(overrides)
    return FleetConfig(**settings)


def wait_for(predicate, timeout_s: float = 20.0, interval_s: float = 0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture()
def fleet(published_registry):
    registry, _ = published_registry
    with ReplicaFleet(registry, fast_config(2)) as running:
        yield running


@pytest.fixture()
def solo_fleet(published_registry):
    registry, _ = published_registry
    with ReplicaFleet(registry, fast_config(1)) as running:
        yield running


def test_fleet_config_validation():
    with pytest.raises(ValueError, match="replicas"):
        FleetConfig(replicas=0)
    with pytest.raises(ValueError, match="heartbeat"):
        FleetConfig(heartbeat_miss_degraded=9, heartbeat_miss_dead=2)
    with pytest.raises(ValueError, match="breaker"):
        FleetConfig(breaker_failures=0)
    assert REPLICA_STATES[0] == ReplicaState.STARTING
    assert REPLICA_STATES[-1] == ReplicaState.DEAD


def test_fleet_round_trip_and_states(fleet, published_registry, micro_dataset):
    _, model_id = published_registry
    prediction = fleet.submit(micro_dataset.x[0])
    assert prediction.model_id == model_id
    assert prediction.label == int(np.argmax(prediction.probabilities))
    states = fleet.replica_states()
    assert [state["slot"] for state in states] == [0, 1]
    assert all(state["state"] == ReplicaState.READY for state in states)
    assert all(state["pid"] not in (None, os.getpid()) for state in states)
    assert all(model_id in state["warmed"] for state in states)
    info = fleet.describe()
    assert info["ready"] == 2 and info["total"] == 2
    assert info["draining"] is False
    assert info["alias_pins"]["latest"] == model_id


def test_fleet_serves_concurrent_requests(fleet, micro_dataset):
    results: "list" = [None] * 12
    errors: "list" = []

    def submit(index: int) -> None:
        try:
            results[index] = fleet.submit(micro_dataset.x[index % 4])
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [
        threading.Thread(target=submit, args=(index,)) for index in range(12)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert all(result is not None for result in results)


def test_kill_dash_nine_respawns_and_keeps_serving(fleet, micro_dataset):
    before = metrics().counter("fleet.respawns_total").value
    pid = fleet.kill_replica(0)
    assert pid is not None

    def respawned() -> bool:
        state = fleet.replica_states()[0]
        return state["state"] == ReplicaState.READY and state["pid"] != pid

    assert wait_for(respawned)
    assert metrics().counter("fleet.respawns_total").value > before
    prediction = fleet.submit(micro_dataset.x[0])
    assert prediction.model_id.startswith("m-")


def test_replica_death_fails_only_inflight_requests(
    solo_fleet, micro_dataset
):
    """A request held by a killed replica raises ReplicaDiedError; after
    respawn the same fleet serves again."""
    assert solo_fleet.inject_fault(0, "slow", 1500.0)
    outcome: "dict" = {}

    def submit() -> None:
        try:
            outcome["result"] = solo_fleet.submit(micro_dataset.x[0])
        except Exception as exc:  # noqa: BLE001 - asserted below
            outcome["error"] = exc

    thread = threading.Thread(target=submit)
    thread.start()
    assert wait_for(lambda: solo_fleet.queue_depth() == 1, timeout_s=5.0)
    pid = solo_fleet.kill_replica(0)
    assert pid is not None
    thread.join(timeout=10.0)
    assert isinstance(outcome.get("error"), ReplicaDiedError)

    def respawned() -> bool:
        state = solo_fleet.replica_states()[0]
        return state["state"] == ReplicaState.READY and state["pid"] != pid

    assert wait_for(respawned)
    assert solo_fleet.submit(micro_dataset.x[0]).model_id.startswith("m-")


def test_hung_replica_is_detected_and_replaced(solo_fleet, micro_dataset):
    """A wedged event loop misses heartbeats until the supervisor kills
    and respawns the replica."""
    pid = solo_fleet.replica_pid(0)
    assert solo_fleet.inject_fault(0, "hang", 30.0)

    def replaced() -> bool:
        state = solo_fleet.replica_states()[0]
        return state["state"] == ReplicaState.READY and state["pid"] != pid

    assert wait_for(replaced)
    assert metrics().counter("fleet.heartbeat_misses").value >= 1
    assert solo_fleet.submit(micro_dataset.x[0]).model_id.startswith("m-")


def test_respawn_budget_exhaustion_opens_the_circuit(
    published_registry, micro_dataset
):
    registry, _ = published_registry
    config = fast_config(
        1,
        respawn=RetryPolicy(max_attempts=1, base_delay_s=0.02,
                            max_delay_s=0.05),
    )
    with ReplicaFleet(registry, config) as fleet:
        first_pid = fleet.replica_pid(0)
        fleet.kill_replica(0)
        assert wait_for(
            lambda: fleet.replica_states()[0]["state"] == ReplicaState.READY
            and fleet.replica_pid(0) != first_pid
        )
        fleet.kill_replica(0)
        assert wait_for(
            lambda: fleet.replica_states()[0]["pid"] is None, timeout_s=10.0
        )
        # Budget exhausted: the slot stays empty and submission sheds.
        time.sleep(0.2)
        assert fleet.replica_states()[0]["state"] == ReplicaState.DEAD
        with pytest.raises(CircuitOpenError) as excinfo:
            fleet.submit(micro_dataset.x[0])
        assert excinfo.value.retry_after_s > 0.0


def test_drain_stops_admission_and_flushes(published_registry, micro_dataset):
    registry, _ = published_registry
    with ReplicaFleet(registry, fast_config(2)) as fleet:
        assert fleet.submit(micro_dataset.x[0]) is not None
        assert fleet.drain() is True
        with pytest.raises(DrainingError):
            fleet.submit(micro_dataset.x[0])
        assert fleet.describe()["draining"] is True
        states = {s["state"] for s in fleet.replica_states()}
        assert states <= {ReplicaState.DRAINING, ReplicaState.DEAD}


def test_hot_reload_swaps_only_after_prewarm(
    tmp_path, trained_micro_model, micro_dataset
):
    registry = ModelRegistry(tmp_path / "reload-registry")
    first = registry.publish(trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES)
    with ReplicaFleet(registry, fast_config(2)) as fleet:
        assert fleet.submit(micro_dataset.x[0]).model_id == first
        second = registry.publish(
            CNNLSTMClassifier(MICRO_MODEL_CONFIG, np.random.default_rng(99)),
            ACTIVITY_NAMES,
            NUM_FRAMES,
        )
        assert second != first
        assert wait_for(
            lambda: fleet.describe()["alias_pins"]["latest"] == second
        )
        # The swap only happens once READY replicas pre-warmed the model.
        for state in fleet.replica_states():
            if state["state"] == ReplicaState.READY:
                assert second in state["warmed"]
        assert fleet.submit(micro_dataset.x[0]).model_id == second
        # Pinned ids keep resolving to the old model after the flip.
        assert fleet.submit(micro_dataset.x[0], model=first).model_id == first
        assert metrics().counter("fleet.reloads_total").value >= 1


def test_parent_side_validation_never_reaches_a_replica(fleet, micro_dataset):
    with pytest.raises(ValueError, match="shape"):
        fleet.submit(np.zeros((2, 2, 2), dtype=np.float32))
    with pytest.raises(ValueError, match="non-finite"):
        bad = np.array(micro_dataset.x[0], copy=True)
        bad[0, 0, 0] = np.nan
        fleet.submit(bad)
    with pytest.raises(ModelNotFoundError):
        fleet.submit(micro_dataset.x[0], model="m-000000000000")
    with pytest.raises(ValueError, match="deadline"):
        fleet.submit(micro_dataset.x[0], deadline_s=-1.0)


def test_circuit_breaker_trips_and_half_opens(solo_fleet):
    replica = solo_fleet._slots[0].replica
    model_id = "m-breaker-test"
    for _ in range(solo_fleet.config.breaker_failures):
        solo_fleet._record_outcome(
            replica, model_id, RegistryError(model_id, "boom"), 0.01
        )
    # One half-open probe is admitted; the next request is shed with the
    # breaker's cooldown as its Retry-After hint.
    solo_fleet._check_breaker(model_id)
    with pytest.raises(CircuitOpenError) as excinfo:
        solo_fleet._check_breaker(model_id)
    assert 0.0 < excinfo.value.retry_after_s <= solo_fleet.config.breaker_cooldown_s
    assert metrics().counter("fleet.breaker_trips").value >= 1
    # A successful outcome closes the breaker again.
    solo_fleet._record_outcome(replica, model_id, None, 0.01)
    solo_fleet._check_breaker(model_id)
    solo_fleet._check_breaker(model_id)


def test_rebuild_error_preserves_the_typed_subclass():
    rebuilt = _rebuild_error("RegistryError", "artifact gone bad")
    assert isinstance(rebuilt, RegistryError)
    assert "artifact gone bad" in str(rebuilt)
    assert isinstance(
        _rebuild_error("ModelNotFoundError", "nope"), ModelNotFoundError
    )
    assert isinstance(_rebuild_error("ValueError", "bad shape"), ValueError)
    # Unknown / non-ReproError types degrade to the ServeError base, never
    # to an unpickling crash.
    assert isinstance(_rebuild_error("SomethingWeird", "??"), ServeError)


def test_fleet_refuses_double_start(fleet):
    with pytest.raises(ServeError, match="already started"):
        fleet.start()


def test_engine_exposes_single_replica_view(engine):
    states = engine.replica_states()
    assert len(states) == 1
    assert states[0]["slot"] == 0
    assert states[0]["state"] == ReplicaState.READY
    assert states[0]["pid"] == os.getpid()
    info = engine.describe()
    assert info["ready"] == 1 and info["total"] == 1
    assert info["draining"] is False
