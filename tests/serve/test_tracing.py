"""Request-id propagation, the access log, and the Chrome-trace export.

The acceptance contract: every response (success and error, health
probes included) carries an ``X-Repro-Request-Id`` header, and each id
appears in exactly one access-log line carrying per-stage span timings
for successful predictions.
"""

import json
import threading

import pytest

from repro.serve import (
    EngineConfig,
    REQUEST_ID_HEADER,
    ServerConfig,
    build_server,
    export_chrome_trace_from_access_log,
    normalize_request_id,
    read_access_log,
)
from repro.serve.client import _request
from repro.serve.trace import SPAN_STAGES

ENGINE_STAGES = {"enqueue", "batch_wait", "predict", "fanout"}


def _header(headers: dict) -> "str | None":
    for name, value in headers.items():
        if name.lower() == REQUEST_ID_HEADER.lower():
            return value
    return None


@pytest.fixture()
def traced_server(published_registry, tmp_path):
    """A live server writing a JSONL access log we can read back."""
    registry, _ = published_registry
    log_path = tmp_path / "access.jsonl"
    server = build_server(
        registry.root,
        EngineConfig(max_batch=4, max_delay_ms=5.0),
        ServerConfig(port=0, access_log_path=str(log_path)),
    )
    with server:
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        yield server, log_path
        server.shutdown()
        thread.join()


def _predict_body(micro_dataset) -> bytes:
    return json.dumps({"sequence": micro_dataset.x[0].tolist()}).encode()


def test_normalize_request_id():
    assert normalize_request_id("abc-123") == "abc-123"
    minted = normalize_request_id(None)
    assert len(minted) == 16 and minted != normalize_request_id(None)
    # Garbage inbound ids are replaced, never honored or truncated.
    assert normalize_request_id("") != ""
    assert normalize_request_id("has space") != "has space"
    assert normalize_request_id("ctrl\x01char") != "ctrl\x01char"
    oversized = "x" * 200
    assert normalize_request_id(oversized) != oversized


def test_predict_honors_inbound_request_id(traced_server, micro_dataset):
    server, _ = traced_server
    status, payload, headers = _request(
        server.url + "/v1/predict", _predict_body(micro_dataset),
        request_id="caller-id-7",
    )
    assert status == 200
    assert _header(headers) == "caller-id-7"
    assert payload["request_id"] == "caller-id-7"
    assert ENGINE_STAGES <= set(payload["spans_ms"])
    assert set(payload["spans_ms"]) <= set(SPAN_STAGES)


def test_predict_mints_request_id_when_absent(traced_server, micro_dataset):
    server, _ = traced_server
    status, payload, headers = _request(
        server.url + "/v1/predict", _predict_body(micro_dataset)
    )
    assert status == 200
    rid = _header(headers)
    assert rid and len(rid) == 16
    assert payload["request_id"] == rid


def test_probes_and_errors_carry_request_id(traced_server):
    server, _ = traced_server
    for path, expected_status in (
        ("/healthz", 200),
        ("/readyz", 200),
        ("/metrics", 200),
        ("/nope", 404),
    ):
        status, _, headers = _request(server.url + path)
        assert status == expected_status, path
        assert _header(headers), path
    # Validation failures (400) are responses too.
    status, _, headers = _request(
        server.url + "/v1/predict", json.dumps({"bogus": 1}).encode()
    )
    assert status == 400
    assert _header(headers)


def test_each_response_logs_exactly_one_line(traced_server, micro_dataset):
    server, log_path = traced_server
    seen_ids = []
    for index in range(3):
        _, _, headers = _request(
            server.url + "/v1/predict", _predict_body(micro_dataset),
            request_id=f"predict-{index}",
        )
        seen_ids.append(_header(headers))
    for path in ("/healthz", "/nope"):
        _, _, headers = _request(server.url + path)
        seen_ids.append(_header(headers))
    entries = read_access_log(log_path)
    logged = [entry["id"] for entry in entries]
    for rid in seen_ids:
        assert logged.count(rid) == 1, rid
    by_id = {entry["id"]: entry for entry in entries}
    for index in range(3):
        entry = by_id[f"predict-{index}"]
        assert entry["status"] == 200
        assert entry["model"]
        assert entry["batch_size"] >= 1
        assert ENGINE_STAGES <= set(entry["spans_ms"])
        assert entry["latency_ms"] > 0.0
    assert by_id[seen_ids[-1]]["status"] == 404
    assert by_id[seen_ids[-1]]["error"] == "NotFound"


def test_chrome_trace_export(traced_server, micro_dataset, tmp_path):
    server, log_path = traced_server
    for _ in range(2):
        _request(server.url + "/v1/predict", _predict_body(micro_dataset))
    out = export_chrome_trace_from_access_log(
        log_path, tmp_path / "trace.json"
    )
    trace = json.loads(out.read_text())
    events = trace["traceEvents"]
    assert events and all(event["ph"] == "X" for event in events)
    names = {event["name"] for event in events}
    assert "request.predict" in names and "request.enqueue" in names
    assert all(event["args"]["request_id"] for event in events)
