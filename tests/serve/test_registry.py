"""Model registry: atomic publish, aliases, and tamper detection."""

import json

import numpy as np
import pytest

from repro.datasets.activities import ACTIVITY_NAMES
from repro.models import CNNLSTMClassifier
from repro.runtime.errors import ModelNotFoundError, RegistryError
from repro.serve import ModelRegistry
from repro.serve.registry import REGISTRY_SCHEMA_VERSION

from ..conftest import MICRO_MODEL_CONFIG
from .conftest import NUM_FRAMES


def test_publish_creates_content_addressed_artifact(published_registry):
    registry, model_id = published_registry
    assert model_id.startswith("m-")
    assert registry.list_models() == [model_id]
    assert registry.resolve("latest") == model_id
    assert registry.resolve(model_id) == model_id
    manifest = registry.manifest("latest")
    assert manifest["model_id"] == model_id
    assert manifest["schema_version"] == REGISTRY_SCHEMA_VERSION
    assert manifest["labels"] == list(ACTIVITY_NAMES)
    assert manifest["preprocessing"]["num_frames"] == NUM_FRAMES
    assert manifest["detector"] is not None


def test_republish_identical_content_is_idempotent(
    published_registry, trained_micro_model, micro_detector
):
    registry, model_id = published_registry
    again = registry.publish(
        trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES,
        detector=micro_detector,
    )
    assert again == model_id
    assert registry.list_models() == [model_id]
    # No leftover staging directories from the no-op republish.
    leftovers = [
        entry.name
        for entry in registry.models_dir.iterdir()
        if entry.name.startswith(".staging-")
    ]
    assert leftovers == []


def test_unknown_reference_raises_model_not_found(published_registry):
    registry, _ = published_registry
    with pytest.raises(ModelNotFoundError):
        registry.resolve("m-000000000000")
    with pytest.raises(ModelNotFoundError):
        registry.load("no-such-alias")


def test_alias_must_point_at_existing_model(published_registry):
    registry, _ = published_registry
    with pytest.raises(ModelNotFoundError):
        registry.set_alias("canary", "m-000000000000")


def test_alias_repoint_and_pinned_id_coexist(tmp_path, trained_micro_model):
    registry = ModelRegistry(tmp_path)
    first = registry.publish(trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES)
    other_model = CNNLSTMClassifier(
        MICRO_MODEL_CONFIG, np.random.default_rng(99)
    )
    second = registry.publish(other_model, ACTIVITY_NAMES, NUM_FRAMES)
    assert first != second
    assert registry.resolve("latest") == second  # repointed by publish
    assert registry.resolve(first) == first  # pinned id still resolves
    registry.set_alias("stable", first)
    assert registry.resolve("stable") == first


def test_tampered_weights_detected_by_checksum(tmp_path, trained_micro_model):
    registry = ModelRegistry(tmp_path)
    model_id = registry.publish(trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES)
    weights = registry.model_dir(model_id) / "weights.npz"
    corrupted = bytearray(weights.read_bytes())
    corrupted[len(corrupted) // 2] ^= 0xFF
    weights.write_bytes(bytes(corrupted))
    with pytest.raises(RegistryError, match="checksum mismatch"):
        registry.load("latest")


def test_hand_edited_manifest_detected_by_id_recheck(
    tmp_path, trained_micro_model
):
    """Even a self-consistent manifest edit (checksum swapped to match
    replaced bytes) fails the content-derived-id recomputation."""
    registry = ModelRegistry(tmp_path)
    model_id = registry.publish(trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES)
    manifest_path = registry.model_dir(model_id) / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["labels"][0] = "tampered"
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(RegistryError, match="does not match its model id"):
        registry.verify("latest")


def test_missing_artifact_file_detected(tmp_path, trained_micro_model):
    registry = ModelRegistry(tmp_path)
    model_id = registry.publish(trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES)
    (registry.model_dir(model_id) / "weights.npz").unlink()
    with pytest.raises(RegistryError, match="missing artifact file"):
        registry.load("latest")


def test_stale_schema_version_refused(tmp_path, trained_micro_model):
    registry = ModelRegistry(tmp_path)
    model_id = registry.publish(trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES)
    manifest_path = registry.model_dir(model_id) / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["schema_version"] = REGISTRY_SCHEMA_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(RegistryError, match="manifest schema"):
        registry.manifest("latest")


def test_label_count_must_match_model(trained_micro_model, tmp_path):
    registry = ModelRegistry(tmp_path)
    with pytest.raises(ValueError, match="labels"):
        registry.publish(trained_micro_model, ("just-one",), NUM_FRAMES)


def _publish_three(tmp_path, trained_micro_model):
    """Three distinct models; ``stable`` pins the first, ``latest`` the
    third, and the second is reachable by id only."""
    registry = ModelRegistry(tmp_path)
    first = registry.publish(trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES)
    second = registry.publish(
        CNNLSTMClassifier(MICRO_MODEL_CONFIG, np.random.default_rng(7)),
        ACTIVITY_NAMES, NUM_FRAMES,
    )
    third = registry.publish(
        CNNLSTMClassifier(MICRO_MODEL_CONFIG, np.random.default_rng(8)),
        ACTIVITY_NAMES, NUM_FRAMES,
    )
    registry.set_alias("stable", first)
    return registry, first, second, third


def test_gc_removes_only_alias_unreachable_models(
    tmp_path, trained_micro_model
):
    registry, first, second, third = _publish_three(
        tmp_path, trained_micro_model
    )
    report = registry.gc()
    assert report["removed"] == [second]
    assert sorted(report["kept"]) == sorted([first, third])
    assert report["reclaimed_bytes"] > 0
    assert report["dry_run"] is False
    assert sorted(registry.list_models()) == sorted([first, third])
    # Both alias-reachable models still verify end to end.
    registry.verify("stable")
    registry.verify("latest")
    with pytest.raises(ModelNotFoundError):
        registry.resolve(second)


def test_gc_dry_run_reports_without_deleting(tmp_path, trained_micro_model):
    registry, first, second, third = _publish_three(
        tmp_path, trained_micro_model
    )
    report = registry.gc(dry_run=True)
    assert report["removed"] == [second]
    assert report["dry_run"] is True
    assert sorted(registry.list_models()) == sorted([first, second, third])
    registry.verify(second)


def test_gc_collects_stale_staging_directories(
    tmp_path, trained_micro_model
):
    registry = ModelRegistry(tmp_path)
    registry.publish(trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES)
    stale = registry.models_dir / ".staging-dead"
    stale.mkdir()
    (stale / "weights.npz").write_bytes(b"half-written")
    report = registry.gc()
    assert report["staging_removed"] == 1
    assert report["removed"] == []
    assert not stale.exists()


def test_gc_on_empty_registry_is_a_no_op(tmp_path):
    registry = ModelRegistry(tmp_path / "empty")
    report = registry.gc()
    assert report == {
        "removed": [], "kept": [], "staging_removed": 0,
        "reclaimed_bytes": 0, "dry_run": False,
    }
