"""HTTP edge cases: 413, deterministic 504, liveness/readiness, Retry-After."""

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.runtime.backoff import RetryPolicy
from repro.serve import (
    EngineConfig,
    FleetConfig,
    ServerConfig,
    build_server,
    fetch_json,
    predict,
)


@contextmanager
def serving(server):
    with server:
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            thread.join()


def _post_raw(url: str, raw: bytes):
    request = urllib.request.Request(
        url + "/v1/predict", data=raw,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), json.loads(exc.read())


def _get_raw(url: str, path: str):
    try:
        with urllib.request.urlopen(url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_oversized_body_is_413(published_registry, micro_dataset):
    registry, _ = published_registry
    server = build_server(
        registry.root,
        EngineConfig(screen_by_default=False),
        ServerConfig(port=0, max_body_bytes=1024),
    )
    with serving(server):
        body = json.dumps({"sequence": micro_dataset.x[0].tolist()}).encode()
        assert len(body) > 1024
        status, _, payload = _post_raw(server.url, body)
    assert status == 413
    assert payload["error"]["type"] == "PayloadTooLarge"


class _FrozenClock:
    """Deterministic stand-in for the engine's ``time`` module.

    Every perf-counter read advances the clock by an hour, so any
    request deadline has always elapsed by the time the batching worker
    looks at it — the 504 path fires deterministically, with no reliance
    on real scheduling delays.
    """

    def __init__(self):
        self._now_ns = 0
        self._lock = threading.Lock()

    def perf_counter_ns(self) -> int:
        with self._lock:
            self._now_ns += int(3600 * 1e9)
            return self._now_ns

    def perf_counter(self) -> float:
        return self.perf_counter_ns() / 1e9

    def monotonic(self) -> float:
        return self.perf_counter()


def test_deadline_504_is_deterministic_under_a_frozen_clock(
    published_registry, micro_dataset, monkeypatch
):
    registry, _ = published_registry
    monkeypatch.setattr("repro.serve.engine.time", _FrozenClock())
    server = build_server(
        registry.root,
        EngineConfig(max_batch=1, max_delay_ms=0.0, screen_by_default=False),
        ServerConfig(port=0),
    )
    with serving(server):
        status, payload = predict(
            server.url, micro_dataset.x[0], deadline_ms=1000.0
        )
    assert status == 504
    assert payload["error"]["type"] == "DeadlineExceededError"


def test_readyz_reports_per_replica_state(live_server):
    ready = fetch_json(live_server.url, "/readyz")
    assert ready["status"] == "ready"
    assert ready["ready"] == 1 and ready["total"] == 1
    assert ready["model_resolvable"] is True
    (replica,) = ready["replicas"]
    assert replica["slot"] == 0
    assert replica["state"] == "READY"
    assert replica["pid"] is not None


def test_empty_registry_is_live_but_not_ready(tmp_path):
    """The liveness/readiness split: a modelless server answers health
    probes (the process is fine) but refuses readiness."""
    server = build_server(
        tmp_path / "empty", EngineConfig(), ServerConfig(port=0)
    )
    with serving(server):
        health = fetch_json(server.url, "/healthz")
        assert health["status"] == "empty"
        assert "model" not in health
        status, body = _get_raw(server.url, "/readyz")
    assert status == 503
    assert body["status"] == "unready"
    assert body["model_resolvable"] is False


def test_fleet_readyz_lists_every_replica(published_registry):
    registry, _ = published_registry
    config = FleetConfig(
        replicas=2,
        engine=EngineConfig(screen_by_default=False),
        heartbeat_interval_s=0.05,
        respawn=RetryPolicy(max_attempts=3, base_delay_s=0.05,
                            max_delay_s=0.25),
    )
    server = build_server(registry.root, None, ServerConfig(port=0), config)
    with serving(server):
        ready = fetch_json(server.url, "/readyz")
        assert ready["total"] == 2
        assert ready["ready"] >= 1
        assert {replica["slot"] for replica in ready["replicas"]} == {0, 1}


def test_draining_fleet_returns_503_with_retry_after(
    published_registry, micro_dataset
):
    registry, _ = published_registry
    config = FleetConfig(
        replicas=1,
        engine=EngineConfig(screen_by_default=False),
        heartbeat_interval_s=0.05,
        respawn=RetryPolicy(max_attempts=3, base_delay_s=0.05,
                            max_delay_s=0.25),
    )
    server = build_server(registry.root, None, ServerConfig(port=0), config)
    with serving(server):
        server.engine.drain()
        body = json.dumps(
            {"sequence": micro_dataset.x[0].tolist()}
        ).encode()
        status, headers, payload = _post_raw(server.url, body)
        ready_status, ready_body = _get_raw(server.url, "/readyz")
    assert status == 503
    assert payload["error"]["type"] == "DrainingError"
    assert float(headers["Retry-After"]) > 0.0
    assert ready_status == 503
    assert ready_body["draining"] is True


def test_429_still_carries_retry_after(published_registry, micro_dataset):
    registry, _ = published_registry
    server = build_server(
        registry.root,
        EngineConfig(
            max_batch=1, max_delay_ms=50.0, queue_capacity=1,
            screen_by_default=False,
        ),
        ServerConfig(port=0),
    )
    shed_headers = []
    with serving(server):
        body = json.dumps(
            {"sequence": micro_dataset.x[0].tolist()}
        ).encode()

        def fire() -> None:
            status, headers, _ = _post_raw(server.url, body)
            if status == 429:
                shed_headers.append(headers)

        threads = [threading.Thread(target=fire) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert shed_headers, "burst never shed; queue_capacity=1 should 429"
    assert all(h.get("Retry-After") == "1" for h in shed_headers)
