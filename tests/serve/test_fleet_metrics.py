"""Fleet-wide metrics aggregation over the heartbeat pipe.

The acceptance contract: with a multi-replica fleet under load,
``GET /metrics`` on the front door reports merged worker-side engine
histograms whose total observation count equals the sum of the
per-replica counts — i.e. engine metrics survive worker isolation.
"""

import threading

from repro.serve import ReplicaFleet, ServerConfig, build_server
from repro.serve.client import fetch_json, run_load

from .test_fleet import fast_config, wait_for


def _merged_predictions(fleet) -> int:
    view = fleet.metrics_snapshot()
    counter = view["merged"].get("serve.predictions_total")
    return int(counter["value"]) if counter else 0


def test_fleet_merges_replica_engine_metrics(published_registry, micro_dataset):
    registry, _ = published_registry
    with ReplicaFleet(registry, fast_config(2)) as fleet:
        fleet.wait_until_ready(2, 30.0)
        total = 8
        for index in range(total):
            fleet.submit(micro_dataset.x[index % len(micro_dataset.x)])
        # Snapshots ride the next heartbeat pong; wait for them to land.
        assert wait_for(lambda: _merged_predictions(fleet) == total)
        view = fleet.metrics_snapshot()
        replicas = {
            slot: snap for slot, snap in view["per_replica"].items()
            if slot != "retired"
        }
        assert len(replicas) == 2
        per_replica_total = sum(
            snap.get("serve.predictions_total", {}).get("value", 0)
            for snap in replicas.values()
        )
        assert per_replica_total == total
        merged_latency = view["merged"]["serve.request_latency_s"]
        assert merged_latency["type"] == "histogram"
        assert merged_latency["count"] == sum(
            snap.get("serve.request_latency_s", {}).get("count", 0)
            for snap in replicas.values()
        )


def test_retired_ledger_survives_replica_death(published_registry, micro_dataset):
    registry, _ = published_registry
    with ReplicaFleet(registry, fast_config(1)) as fleet:
        fleet.wait_until_ready(1, 30.0)
        fleet.submit(micro_dataset.x[0])
        assert wait_for(lambda: _merged_predictions(fleet) == 1)
        assert fleet.kill_replica(0) is not None
        # The death fold moves the last pong snapshot into the retired
        # ledger; fleet totals must not reset with the process.
        assert wait_for(
            lambda: "retired" in fleet.metrics_snapshot()["per_replica"]
        )
        assert _merged_predictions(fleet) == 1


def test_http_metrics_reports_fleet_merge(published_registry, micro_dataset):
    registry, _ = published_registry
    server = build_server(
        registry.root, None, ServerConfig(port=0), fast_config(3)
    )
    with server:
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            server.engine.wait_until_ready(3, 30.0)
            summary = run_load(
                server.url, micro_dataset.x[:4], requests=24, concurrency=6
            )
            assert summary["ok"] == 24

            def merged_count() -> int:
                payload = fetch_json(server.url, "/metrics")
                counter = payload.get("serve.predictions_total")
                return int(counter["value"]) if counter else 0

            assert wait_for(lambda: merged_count() == 24)
            payload = fetch_json(server.url, "/metrics")
            # Same flat top level as single-engine mode, fleet-wide totals.
            assert payload["serve.batch_size"]["type"] == "histogram"
            assert payload["serve.request_latency_s"]["count"] == 24
            breakdown = payload["fleet.per_replica"]
            assert breakdown["type"] == "breakdown"
            per_replica = [
                snap.get("serve.request_latency_s", {}).get("count", 0)
                for slot, snap in breakdown["replicas"].items()
                if slot != "retired"
            ]
            assert sum(per_replica) == 24
            # Parent-side fleet instruments merge in alongside.
            assert payload["fleet.requests_total"]["value"] >= 24
        finally:
            server.shutdown()
            thread.join()
