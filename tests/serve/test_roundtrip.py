"""Checkpoint round-trip fidelity: published == reloaded, bit for bit.

A registry round-trip (train -> publish -> load) must not perturb a
single weight: the loaded model's logits are compared to the original's
with exact equality, not a tolerance, because ``nn.serialization`` and
the manifest pipeline are pure byte transport — any difference means a
dtype or layout bug, not numerics.
"""

import numpy as np

from repro.serve import ModelRegistry

from .conftest import add_blob


def test_published_model_reproduces_logits_bit_identically(
    published_registry, trained_micro_model, micro_dataset
):
    registry, model_id = published_registry
    loaded = registry.load(model_id)
    original = trained_micro_model.predict_logits(micro_dataset.x)
    round_tripped = loaded.model.predict_logits(micro_dataset.x)
    assert original.dtype == round_tripped.dtype
    assert np.array_equal(original, round_tripped)


def test_detector_round_trip_is_bit_identical(
    published_registry, micro_detector, micro_dataset
):
    registry, model_id = published_registry
    loaded = registry.load(model_id)
    assert loaded.detector is not None
    probe = add_blob(micro_dataset.x[:4])
    assert np.array_equal(
        micro_detector.scores(probe), loaded.detector.scores(probe)
    )
    assert loaded.detector.config.canonicalize \
        == micro_detector.config.canonicalize


def test_loaded_model_metadata_matches_manifest(published_registry):
    registry, model_id = published_registry
    loaded = registry.load("latest")
    assert loaded.model_id == model_id
    assert loaded.sequence_shape == (loaded.num_frames, 16, 16)
    assert loaded.manifest["files"]["weights.npz"]
    assert len(loaded.labels) == loaded.model.config.num_classes


def test_double_round_trip_is_stable(tmp_path, published_registry, micro_dataset):
    """Publish(load(publish(m))) lands on the same content id."""
    registry, model_id = published_registry
    loaded = registry.load(model_id)
    second_registry = ModelRegistry(tmp_path / "second")
    republished = second_registry.publish(
        loaded.model, loaded.labels, loaded.num_frames,
        detector=loaded.detector,
    )
    # Same weights + same manifest core -> same content-derived id.
    assert republished == model_id
    again = second_registry.load(republished)
    assert np.array_equal(
        loaded.model.predict_logits(micro_dataset.x[:2]),
        again.model.predict_logits(micro_dataset.x[:2]),
    )
