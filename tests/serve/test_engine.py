"""Inference engine: micro-batching, admission control, screening, LRU."""

import threading
import time

import numpy as np
import pytest

from repro.datasets.activities import ACTIVITY_NAMES
from repro.models import CNNLSTMClassifier
from repro.runtime.errors import (
    DeadlineExceededError,
    OverloadError,
    ServeError,
)
from repro.runtime.telemetry import metrics
from repro.serve import EngineConfig, InferenceEngine, ModelRegistry

from ..conftest import MICRO_MODEL_CONFIG
from .conftest import NUM_FRAMES, add_blob


def test_engine_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(max_batch=0)
    with pytest.raises(ValueError):
        EngineConfig(queue_capacity=0)
    with pytest.raises(ValueError):
        EngineConfig(screen_threshold=1.5)
    with pytest.raises(ValueError):
        EngineConfig(max_delay_ms=-1.0)


def test_single_prediction_round_trip(engine, micro_dataset):
    prediction = engine.submit(micro_dataset.x[0], screen=False)
    assert prediction.label_name == ACTIVITY_NAMES[prediction.label]
    assert len(prediction.probabilities) == len(ACTIVITY_NAMES)
    assert abs(sum(prediction.probabilities) - 1.0) < 1e-5
    assert prediction.batch_size >= 1
    assert prediction.screening is None  # opted out


def test_concurrent_requests_coalesce_into_batches(engine, micro_dataset):
    """The tentpole property: N concurrent submits share forward passes
    (the batch-size histogram's mass must not all sit at 1)."""
    results = []
    barrier = threading.Barrier(8)

    def call(index: int) -> None:
        barrier.wait()
        results.append(
            engine.submit(micro_dataset.x[index % len(micro_dataset)],
                          screen=False)
        )

    threads = [
        threading.Thread(target=call, args=(index,)) for index in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 8
    assert max(result.batch_size for result in results) > 1
    snapshot = metrics().snapshot()["serve.batch_size"]
    assert snapshot["count"] >= 1
    # Mean batch size above 1 <=> at least one multi-request forward pass.
    assert snapshot["mean"] > 1.0


def test_batched_results_match_solo_results(engine, micro_dataset):
    """Coalescing must not change any caller's answer."""
    solo = [
        engine.submit(micro_dataset.x[index], screen=False)
        for index in range(4)
    ]
    results: "dict[int, object]" = {}
    barrier = threading.Barrier(4)

    def call(index: int) -> None:
        barrier.wait()
        results[index] = engine.submit(micro_dataset.x[index], screen=False)

    threads = [
        threading.Thread(target=call, args=(index,)) for index in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for index in range(4):
        assert results[index].label == solo[index].label
        np.testing.assert_allclose(
            results[index].probabilities, solo[index].probabilities,
            rtol=1e-5, atol=1e-6,
        )


def test_shape_mismatch_rejected(engine):
    with pytest.raises(ValueError, match="shape"):
        engine.submit(np.zeros((NUM_FRAMES, 4, 4), dtype=np.float32))


def test_non_finite_sequence_rejected(engine, micro_dataset):
    poisoned = np.array(micro_dataset.x[0], copy=True)
    poisoned[0, 0, 0] = np.nan
    with pytest.raises(ValueError, match="non-finite"):
        engine.submit(poisoned)


def test_submit_requires_running_engine(published_registry, micro_dataset):
    registry, _ = published_registry
    engine = InferenceEngine(registry)
    with pytest.raises(ServeError, match="not running"):
        engine.submit(micro_dataset.x[0])


def test_full_queue_sheds_load(published_registry, micro_dataset):
    """Admission control: a full queue raises OverloadError immediately
    instead of buffering without bound."""
    registry, _ = published_registry
    engine = InferenceEngine(registry, EngineConfig(queue_capacity=2))
    # Accept submissions without draining them: the worker thread is
    # deliberately not started, so the queue stays saturated.
    engine._running = True
    errors: "list[Exception]" = []

    def fill() -> None:
        try:
            engine.submit(micro_dataset.x[0], deadline_s=0.2, screen=False)
        except DeadlineExceededError:
            pass
        except Exception as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    fillers = [threading.Thread(target=fill) for _ in range(2)]
    for thread in fillers:
        thread.start()
    for _ in range(200):
        if engine.queue_depth() >= 2:
            break
        time.sleep(0.005)
    assert engine.queue_depth() == 2
    with pytest.raises(OverloadError, match="queue full"):
        engine.submit(micro_dataset.x[0], screen=False)
    for thread in fillers:
        thread.join()
    assert errors == []
    assert metrics().snapshot()["serve.load_shed_total"]["value"] == 1


def test_deadline_exceeded_when_no_result_in_time(
    published_registry, micro_dataset
):
    registry, _ = published_registry
    engine = InferenceEngine(registry, EngineConfig())
    engine._running = True  # no worker: the result never arrives
    with pytest.raises(DeadlineExceededError):
        engine.submit(micro_dataset.x[0], deadline_s=0.05, screen=False)
    assert (
        metrics().snapshot()["serve.deadline_exceeded_total"]["value"] == 1
    )


def test_screening_flags_trigger_bearing_sequence(engine, micro_dataset):
    """Section VII online: a trigger-bearing request gets a verdict."""
    triggered = add_blob(micro_dataset.x[:1])[0]
    prediction = engine.submit(triggered, screen=True)
    assert prediction.screening is not None
    assert prediction.screening["flagged"] is True
    assert prediction.screening["score"] >= prediction.screening["threshold"]

    clean = engine.submit(micro_dataset.x[0], screen=True)
    assert clean.screening is not None
    assert clean.screening["score"] < prediction.screening["score"]


def test_screen_by_default_config(published_registry, micro_dataset):
    registry, _ = published_registry
    with InferenceEngine(
        registry, EngineConfig(screen_by_default=True)
    ) as engine:
        prediction = engine.submit(micro_dataset.x[0])  # screen unspecified
        assert prediction.screening is not None


def test_warm_model_lru_eviction(tmp_path, trained_micro_model, micro_dataset):
    registry = ModelRegistry(tmp_path)
    first = registry.publish(
        trained_micro_model, ACTIVITY_NAMES, NUM_FRAMES, aliases=("a",)
    )
    other = CNNLSTMClassifier(MICRO_MODEL_CONFIG, np.random.default_rng(99))
    second = registry.publish(
        other, ACTIVITY_NAMES, NUM_FRAMES, aliases=("b",)
    )
    assert first != second
    with InferenceEngine(
        registry, EngineConfig(model_cache_size=1)
    ) as engine:
        engine.submit(micro_dataset.x[0], model="a", screen=False)
        engine.submit(micro_dataset.x[0], model="b", screen=False)
        engine.submit(micro_dataset.x[0], model="a", screen=False)
    snapshot = metrics().snapshot()
    assert snapshot["serve.model_cache_evictions"]["value"] >= 2
    assert snapshot["serve.model_cache_misses"]["value"] >= 3


def test_stop_drains_admitted_requests(published_registry, micro_dataset):
    """Graceful shutdown: requests admitted before stop still complete."""
    registry, _ = published_registry
    engine = InferenceEngine(
        registry, EngineConfig(max_batch=2, max_delay_ms=50.0)
    )
    engine.start()
    results = []
    started = threading.Barrier(4)

    def call() -> None:
        started.wait()
        results.append(engine.submit(micro_dataset.x[0], screen=False))

    threads = [threading.Thread(target=call) for _ in range(3)]
    for thread in threads:
        thread.start()
    started.wait()
    time.sleep(0.1)  # let all three reach the admission queue
    engine.stop()
    for thread in threads:
        thread.join()
    assert len(results) == 3
