"""HTTP layer: routes, status mapping, load shedding, screening verdicts."""

import json
import shutil
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    EngineConfig,
    ServerConfig,
    build_server,
    fetch_json,
    predict,
    run_load,
)

from .conftest import NUM_FRAMES, add_blob


def test_healthz_reports_model_contract(live_server, published_registry):
    _, model_id = published_registry
    health = fetch_json(live_server.url, "/healthz")
    assert health["status"] == "ok"
    assert health["model"]["id"] == model_id
    assert health["model"]["num_frames"] == NUM_FRAMES
    assert health["model"]["frame_shape"] == [16, 16]
    assert health["model"]["screening"] is True
    assert model_id in health["models"]
    assert health["aliases"]["latest"] == model_id


def test_predict_round_trip_with_screening(live_server, micro_dataset):
    status, payload = predict(
        live_server.url, micro_dataset.x[0], screen=True
    )
    assert status == 200
    assert payload["label"] == payload["probabilities"].index(
        max(payload["probabilities"])
    )
    assert isinstance(payload["label_name"], str)
    assert payload["model"].startswith("m-")
    assert payload["screening"] is not None
    assert set(payload["screening"]) == {"score", "flagged", "threshold"}
    assert payload["timing_ms"]["infer"] > 0.0


def test_predict_flags_trigger_bearing_sequence(live_server, micro_dataset):
    """The acceptance criterion: a trigger-bearing request comes back
    with a positive screening verdict in the response body."""
    triggered = add_blob(micro_dataset.x[:1])[0]
    status, payload = predict(live_server.url, triggered, screen=True)
    assert status == 200
    assert payload["screening"]["flagged"] is True


def test_malformed_bodies_are_400(live_server):
    def post(raw: bytes) -> int:
        request = urllib.request.Request(
            live_server.url + "/v1/predict", data=raw,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status
        except urllib.error.HTTPError as exc:
            return exc.code

    assert post(b"not json") == 400
    assert post(b"[1, 2, 3]") == 400
    assert post(json.dumps({"sequence": [[[1.0]]], "bogus": 1}).encode()) == 400
    assert post(json.dumps({"sequence": "text"}).encode()) == 400
    assert post(
        json.dumps({"sequence": [[[1.0]]], "deadline_ms": -5}).encode()
    ) == 400


def test_wrong_shape_is_400(live_server):
    status, payload = predict(live_server.url, [[[0.0, 1.0], [1.0, 0.0]]])
    assert status == 400
    assert payload["error"]["type"] == "ValidationError"


def test_unknown_model_is_404(live_server, micro_dataset):
    status, payload = predict(
        live_server.url, micro_dataset.x[0], model="m-000000000000"
    )
    assert status == 404
    assert payload["error"]["type"] == "ModelNotFoundError"


def test_unknown_route_is_404(live_server):
    try:
        with urllib.request.urlopen(
            live_server.url + "/nope", timeout=10
        ) as response:
            status = response.status
    except urllib.error.HTTPError as exc:
        status = exc.code
    assert status == 404


def test_metrics_endpoint_exposes_serving_histograms(
    live_server, micro_dataset
):
    predict(live_server.url, micro_dataset.x[0], screen=False)
    snapshot = fetch_json(live_server.url, "/metrics")
    assert snapshot["serve.request_latency_s"]["type"] == "histogram"
    assert snapshot["serve.batch_size"]["count"] >= 1
    assert snapshot["serve.requests_total"]["value"] >= 1


def test_saturated_queue_returns_429(published_registry, micro_dataset):
    """An oversized synchronized burst against a tiny queue must shed."""
    registry, _ = published_registry
    server = build_server(
        registry.root,
        EngineConfig(
            max_batch=1, max_delay_ms=20.0, queue_capacity=2,
            screen_by_default=False,
        ),
        ServerConfig(port=0),
    )
    with server:
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            summary = run_load(
                server.url, micro_dataset.x[:2], requests=24, burst=True
            )
        finally:
            server.shutdown()
            thread.join()
    assert summary["shed_429"] > 0
    assert summary["ok"] > 0
    assert summary["ok"] + summary["shed_429"] + summary["deadline_504"] \
        + summary["other_errors"] == 24


def test_deadline_exceeded_returns_504(published_registry, micro_dataset):
    """A deadline far shorter than the batching delay maps to 504."""
    registry, _ = published_registry
    server = build_server(
        registry.root,
        EngineConfig(max_batch=8, max_delay_ms=500.0, screen_by_default=False),
        ServerConfig(port=0),
    )
    with server:
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            status, payload = predict(
                server.url, micro_dataset.x[0], deadline_ms=1.0
            )
        finally:
            server.shutdown()
            thread.join()
    assert status == 504
    assert payload["error"]["type"] == "DeadlineExceededError"


def test_tampered_registry_maps_to_503(
    tmp_path, published_registry, micro_dataset
):
    """Manifest-checksum detection surfaces as a typed 503, not a crash."""
    source_registry, model_id = published_registry
    root = tmp_path / "tampered"
    shutil.copytree(source_registry.root, root)
    weights = root / "models" / model_id / "weights.npz"
    corrupted = bytearray(weights.read_bytes())
    corrupted[len(corrupted) // 2] ^= 0xFF
    weights.write_bytes(bytes(corrupted))

    server = build_server(root, EngineConfig(), ServerConfig(port=0))
    with server:
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            status, payload = predict(server.url, micro_dataset.x[0])
        finally:
            server.shutdown()
            thread.join()
    assert status == 503
    assert payload["error"]["type"] == "RegistryError"
    assert "checksum mismatch" in payload["error"]["message"]


def test_empty_registry_splits_liveness_from_readiness(tmp_path):
    """A modelless process is alive (healthz 200) but unready (readyz
    503) — the split lets orchestrators keep the pod while withholding
    traffic."""
    server = build_server(
        tmp_path / "empty", EngineConfig(), ServerConfig(port=0)
    )
    with server:
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            health = fetch_json(server.url, "/healthz")
            assert health["status"] == "empty"
            with pytest.raises(OSError, match="503"):
                fetch_json(server.url, "/readyz")
        finally:
            server.shutdown()
            thread.join()


def test_load_generator_summary_shape(live_server, micro_dataset):
    summary = run_load(
        live_server.url, micro_dataset.x[:4], requests=12, concurrency=4,
        screen=False,
    )
    assert summary["ok"] == 12
    assert summary["mode"] == "steady"
    for key in ("p50", "p95", "p99", "mean", "max"):
        assert summary["latency_ms"][key] > 0.0
    assert summary["latency_ms"]["p50"] <= summary["latency_ms"]["p99"]
    assert summary["throughput_rps"] > 0.0
    assert sum(summary["labels"].values()) == 12
