"""Tests for ASCII heatmap rendering."""

import numpy as np
import pytest

from repro.eval import render_comparison, render_heatmap


def test_render_shape():
    art = render_heatmap(np.zeros((4, 8)))
    lines = art.splitlines()
    assert len(lines) == 4
    assert all(len(line) == 8 for line in lines)


def test_render_intensity_mapping():
    heatmap = np.array([[0.0, 1.0]])
    art = render_heatmap(heatmap)
    assert art[0] == " "  # darkest
    assert art[-1] == "@"  # brightest


def test_render_constant_field():
    art = render_heatmap(np.full((2, 2), 0.5))
    assert set(art.replace("\n", "")) == {" "}  # degenerate range maps low


def test_render_downsamples_wide_maps():
    art = render_heatmap(np.zeros((2, 200)), max_width=50)
    assert len(art.splitlines()[0]) <= 100


def test_render_validates_rank():
    with pytest.raises(ValueError):
        render_heatmap(np.zeros(8))


def test_render_pinned_range():
    half = render_heatmap(np.full((1, 1), 0.5), value_range=(0.0, 1.0))
    assert half not in (" ", "@")


def test_comparison_panels():
    clean = np.zeros((4, 6))
    triggered = clean.copy()
    triggered[2, 3] = 1.0
    art = render_comparison(clean, triggered)
    assert "clean" in art
    assert "triggered" in art
    assert "|diff|" in art
    assert "@" in art  # the trigger blob shows up
    assert len(art.splitlines()) == 5  # title row + 4 raster rows


def test_comparison_validates_shapes():
    with pytest.raises(ValueError):
        render_comparison(np.zeros((2, 2)), np.zeros((3, 3)))
