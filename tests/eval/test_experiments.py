"""Integration tests for the experiment context and runners (micro scale)."""

import numpy as np
import pytest

from repro.datasets import SIMILAR_SCENARIOS
from repro.eval import FAST, ExperimentContext, run_clean_prototype, run_simulator_throughput
from repro.eval.experiments import run_heatmap_stealth, run_injection_rate_sweep

from ..conftest import make_micro_generation_config

MICRO_PRESET = FAST.scaled(
    generation=make_micro_generation_config(),
    num_frames=8,
    samples_per_class=4,
    attacker_samples_per_class=4,
    epochs=2,
    patience=2,
    repetitions=1,
    num_attack_samples=4,
    shap_samples=24,
    num_shap_executions=1,
    injection_rates=(0.5,),
    poisoned_frame_counts=(2, 4),
)


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    import os

    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("cache"))
    return ExperimentContext(MICRO_PRESET, seed=0)


def test_generators_use_distinct_environments(ctx):
    assert ctx.train_generator is not ctx.attack_generator
    train_env = ctx.train_generator._environment_facets
    attack_env = ctx.attack_generator._environment_facets
    if train_env and attack_env:
        assert train_env[0].delays.sum() != attack_env[0].delays.sum()


def test_clean_splits_are_disjoint_and_complete(ctx):
    total = len(ctx.clean_train) + len(ctx.clean_test)
    assert total == 6 * MICRO_PRESET.samples_per_class


def test_datasets_cached_across_instances(ctx):
    other = ExperimentContext(MICRO_PRESET, seed=0)
    assert np.allclose(other.clean_train.x, ctx.clean_train.x)


def test_surrogate_is_memoized(ctx):
    assert ctx.surrogate is ctx.surrogate


def test_attack_plan_memoized(ctx):
    scenario = SIMILAR_SCENARIOS[0]
    plan_a = ctx.attack_plan(scenario, num_poisoned_frames=2)
    plan_b = ctx.attack_plan(scenario, num_poisoned_frames=2)
    assert plan_a is plan_b
    assert plan_a.frame_indices.shape == (2,)


def test_run_clean_prototype(ctx):
    result = run_clean_prototype(ctx)
    assert 0.0 <= result.accuracy <= 1.0
    assert result.confusion.shape == (6, 6)
    assert result.confusion.sum() == len(ctx.clean_test)


def test_run_heatmap_stealth(ctx):
    result = run_heatmap_stealth(ctx)
    assert result.deviation["l2"] > 0.0
    assert result.clean_frame.shape == result.triggered_frame.shape


def test_run_injection_rate_sweep_structure(ctx):
    sweep = run_injection_rate_sweep(
        ctx, (SIMILAR_SCENARIOS[0],), num_poisoned_frames=2, rates=(0.5,)
    )
    assert sweep.parameter_values == (0.5,)
    metrics = sweep.curves["push->pull"][0]
    assert 0.0 <= metrics.asr <= 1.0
    assert metrics.uasr >= metrics.asr - 1e-9


def test_run_simulator_throughput(ctx):
    result = run_simulator_throughput(ctx)
    assert result.seconds_per_activity > 0.0
    assert result.seconds_per_pair_activity < result.seconds_per_activity
    assert result.num_frames == MICRO_PRESET.num_frames
