"""Tests for the design-choice ablations."""

import numpy as np
import pytest

from repro.eval.ablations import (
    ablate_clutter_removal,
    ablate_shap_estimators,
    ablate_specular_gain,
    ablate_sway_amplitude,
    format_clutter_ablation,
    format_shap_ablation,
    format_specular_ablation,
    format_sway_ablation,
)

from ..conftest import make_micro_generation_config


def test_clutter_removal_ablation(micro_generator):
    result = ablate_clutter_removal(micro_generator, tolerance_bins=3)
    scores = dict(result.rows)
    assert set(scores) == {"background+median", "background", "mti", "none"}
    # The shipped default must track the hand at least as well as raw maps.
    assert scores["background+median"] >= scores["none"]
    assert all(0.0 <= s <= 1.0 for s in scores.values())
    text = format_clutter_ablation(result)
    assert "best:" in text


def test_sway_ablation_monotone_onset():
    config = make_micro_generation_config()
    result = ablate_sway_amplitude(config, amplitudes_m=(0.0, 0.004), seed=0)
    # Zero micro-motion -> (almost) nothing survives clutter removal;
    # millimeter motion -> strong residual.  This is the effect that makes
    # body-worn triggers visible at all.
    assert result.residual_energy[1] > 2.0 * max(result.residual_energy[0], 1e-9)
    assert "mm" in format_sway_ablation(result)


def test_specular_gain_ablation_monotone(micro_generator):
    result = ablate_specular_gain(micro_generator, gains=(1.0, 15.0))
    assert result.relative_l2[1] > result.relative_l2[0]
    assert "gain" in format_specular_ablation(result)


def test_shap_estimator_ablation(trained_micro_model, micro_dataset):
    features = trained_micro_model.frame_features(micro_dataset.x[:1])[0]
    result = ablate_shap_estimators(
        trained_micro_model, features, budgets=(32, 128), class_index=0
    )
    assert len(result.agreement) == 2
    # Agreement improves (or stays high) with budget.
    assert result.agreement[1] >= result.agreement[0] - 0.2
    assert all(t > 0 for t in result.kernel_seconds)
    assert "corr" in format_shap_ablation(result)
