"""Tests for experiment scale presets."""

import numpy as np
import pytest

from repro.eval import DEFAULT, FAST, PAPER, ExperimentPreset, preset_by_name


def test_preset_lookup():
    assert preset_by_name("fast") is FAST
    assert preset_by_name("default") is DEFAULT
    assert preset_by_name("paper") is PAPER
    with pytest.raises(KeyError):
        preset_by_name("huge")


def test_scale_ordering():
    assert FAST.samples_per_class < DEFAULT.samples_per_class < PAPER.samples_per_class
    assert FAST.repetitions <= DEFAULT.repetitions < PAPER.repetitions


def test_paper_preset_matches_protocol():
    # Section VI-B: 1440 samples/class, Section VI-E: 30 repetitions,
    # rate 0.4 and k = 8 are within the sweep grids.
    assert PAPER.repetitions == 30
    assert 0.4 in PAPER.injection_rates
    assert 8 in PAPER.poisoned_frame_counts


def test_validation():
    with pytest.raises(ValueError):
        ExperimentPreset(name="bad", samples_per_class=2)
    with pytest.raises(ValueError):
        ExperimentPreset(name="bad", num_frames=8, poisoned_frame_counts=(16,))


def test_generation_config_respects_num_frames():
    assert FAST.generation_config().num_frames == FAST.num_frames


def test_generation_override():
    from tests.conftest import make_micro_generation_config

    preset = FAST.scaled(generation=make_micro_generation_config(), num_frames=8)
    config = preset.generation_config()
    assert config.num_frames == 8
    assert config.heatmap.frame_shape == (16, 16)
    assert preset.frame_shape() == (16, 16)


def test_derived_configs_consistent():
    model_config = DEFAULT.model_config()
    assert model_config.frame_shape == DEFAULT.frame_shape()
    training = DEFAULT.training_config(seed=5)
    assert training.seed == 5
    assert training.epochs == DEFAULT.epochs
    shap = DEFAULT.shap_config(seed=3)
    assert shap.num_samples == DEFAULT.shap_samples


def test_scaled_copy():
    modified = FAST.scaled(repetitions=7)
    assert modified.repetitions == 7
    assert FAST.repetitions != 7 or True
    assert modified.name == FAST.name
