"""Tests for plain-text report formatting."""

import numpy as np

from repro.eval import (
    AblationResult,
    CleanPrototypeResult,
    DefenseResult,
    FrameImportanceExperimentResult,
    RobustnessResult,
    StealthResult,
    SweepResult,
    ThroughputResult,
    format_ablation,
    format_confusion_matrix,
    format_defense,
    format_full_sweep,
    format_histogram,
    format_robustness,
    format_stealth,
    format_sweep,
    format_throughput,
)
from repro.models import AttackMetrics
from repro.defense import DetectionReport


def test_format_confusion_matrix():
    result = CleanPrototypeResult(
        accuracy=0.99, confusion=np.eye(6, dtype=int) * 10, history_epochs=5
    )
    text = format_confusion_matrix(result)
    assert "99.00%" in text
    assert "Push" in text


def make_sweep():
    metrics = [AttackMetrics(0.5, 0.6, 0.9), AttackMetrics(0.8, 0.9, 0.88)]
    return SweepResult("injection_rate", (0.2, 0.4), {"push->pull": metrics})


def test_format_sweep_contains_values():
    text = format_sweep(make_sweep(), "asr")
    assert "push->pull" in text
    assert "50.00%" in text and "80.00%" in text


def test_sweep_series_accessor():
    sweep = make_sweep()
    assert sweep.series("push->pull", "asr") == [0.5, 0.8]
    assert sweep.series("push->pull", "cdr") == [0.9, 0.88]


def test_format_full_sweep_has_three_sections():
    text = format_full_sweep(make_sweep())
    assert "ASR" in text and "UASR" in text and "CDR" in text


def test_format_histogram():
    result = FrameImportanceExperimentResult(
        histogram=np.array([0, 3, 1]), mean_importance=np.zeros(3), num_samples=4
    )
    text = format_histogram(result)
    assert "frame  1:   3" in text
    assert text.count("#") >= 3


def test_format_stealth():
    result = StealthResult(
        deviation={"l2": 1.5, "max_abs": 0.3, "relative_l2": 0.12},
        clean_frame=np.zeros((4, 4)),
        triggered_frame=np.zeros((4, 4)),
    )
    text = format_stealth(result)
    assert "0.3000" in text and "12.00%" in text


def test_format_robustness_marks_zero_shot():
    result = RobustnessResult(
        parameter_name="angle_deg",
        parameter_values=(0.0, 10.0),
        seen_mask=(True, False),
        asr=[1.0, 0.9],
        uasr=[1.0, 0.95],
    )
    text = format_robustness(result)
    assert "*" in text
    assert "100.00%" in text


def test_format_ablation_is_markdown_table():
    result = AblationResult(rows=[("With Optimal Frames and Positions", 0.84)])
    text = format_ablation(result)
    assert text.startswith("| Experiment |")
    assert "84%" in text


def test_format_throughput():
    result = ThroughputResult(
        seconds_per_pair_activity=0.01,
        seconds_per_activity=0.16,
        num_virtual_antennas=16,
        num_frames=32,
    )
    text = format_throughput(result)
    assert "16 virtual antennas" in text
    assert "0.87" in text  # paper reference point


def test_format_defense():
    result = DefenseResult(
        detector_report=DetectionReport(0.9, 0.8, 0.05, 0.93),
        asr_without_defense=0.8,
        asr_with_augmentation=0.2,
        cdr_with_augmentation=0.85,
    )
    text = format_defense(result)
    assert "80.0%" in text and "20.0%" in text
