"""Micro-scale tests for the remaining experiment runners.

These exercise the robustness, ablation, frame-sweep and defense runners
end to end at the micro preset — each involves real (tiny) trainings, so
they are the slowest tests in the suite, but they are the only coverage of
the figure-14/15/Table-I/Section-VII code paths.
"""

import numpy as np
import pytest

from repro.datasets import SIMILAR_SCENARIOS
from repro.eval import FAST, ExperimentContext
from repro.eval.experiments import (
    ABLATION_CONFIGURATIONS,
    run_ablation,
    run_angle_robustness,
    run_defenses,
    run_distance_robustness,
    run_frame_importance,
    run_poisoned_frames_sweep,
    run_spectral_defense,
)

from ..conftest import make_micro_generation_config

MICRO_PRESET = FAST.scaled(
    generation=make_micro_generation_config(),
    num_frames=8,
    samples_per_class=4,
    attacker_samples_per_class=4,
    epochs=2,
    patience=2,
    repetitions=1,
    num_attack_samples=4,
    shap_samples=24,
    num_shap_executions=1,
    injection_rates=(0.5,),
    poisoned_frame_counts=(2, 4),
)


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    import os

    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("cache-runners"))
    return ExperimentContext(MICRO_PRESET, seed=1)


def test_run_poisoned_frames_sweep(ctx):
    sweep = run_poisoned_frames_sweep(
        ctx, (SIMILAR_SCENARIOS[0],), frame_counts=(2, 4)
    )
    assert sweep.parameter_values == (2.0, 4.0)
    metrics = sweep.curves["push->pull"]
    assert len(metrics) == 2
    for m in metrics:
        assert 0.0 <= m.asr <= 1.0


def test_run_angle_robustness(ctx):
    result = run_angle_robustness(ctx, samples_per_position=2)
    assert len(result.asr) == 7
    assert len(result.seen_mask) == 7
    # Seen angles per the paper protocol: -30, 0, 30.
    assert sum(result.seen_mask) == 3
    assert all(0.0 <= a <= 1.0 for a in result.asr)
    assert all(u >= a - 1e-9 for u, a in zip(result.uasr, result.asr))


def test_run_distance_robustness(ctx):
    result = run_distance_robustness(ctx, samples_per_position=2)
    assert len(result.asr) == 7
    assert sum(result.seen_mask) == 4  # 0.8, 1.2, 1.6, 2.0


def test_run_ablation_rows(ctx):
    result = run_ablation(ctx)
    labels = [label for label, _ in result.rows]
    assert labels == [label for label, *_ in ABLATION_CONFIGURATIONS]
    assert all(0.0 <= asr <= 1.0 for _, asr in result.rows)


def test_run_defenses(ctx):
    result = run_defenses(ctx)
    assert 0.0 <= result.detector_report.auc <= 1.0
    assert 0.0 <= result.asr_with_augmentation <= 1.0
    assert 0.0 <= result.cdr_with_augmentation <= 1.0


def test_run_frame_importance_histogram_sums(ctx):
    result = run_frame_importance(ctx, samples_per_activity=1)
    assert result.histogram.sum() == result.num_samples
    assert result.mean_importance.shape == (MICRO_PRESET.num_frames,)


def test_run_spectral_defense(ctx):
    result = run_spectral_defense(ctx, injection_rate=0.5, num_poisoned_frames=2)
    assert 0.0 <= result.poison_recall <= 1.0
    # Micro classes are below min_class_size, so removal may be zero —
    # the defense must never remove more than it scored.
    assert 0.0 <= result.removed_fraction < 1.0
    assert 0.0 <= result.asr_after <= 1.0
    assert 0.0 <= result.cdr_after <= 1.0


def test_run_trigger_size_sweeps(ctx):
    from repro.eval.experiments import (
        run_trigger_size_frames_sweep,
        run_trigger_size_injection_sweep,
    )

    injection = run_trigger_size_injection_sweep(ctx)
    assert set(injection.curves) == {"2x2", "4x4"}
    assert injection.parameter_values == MICRO_PRESET.injection_rates
    frames = run_trigger_size_frames_sweep(ctx)
    assert set(frames.curves) == {"2x2", "4x4"}
    for curve in frames.curves.values():
        assert len(curve) == len(MICRO_PRESET.poisoned_frame_counts)
