"""Tests for ASCII sweep charts."""

import pytest

from repro.eval.charts import render_series, render_sweep_chart
from repro.eval import SweepResult
from repro.models import AttackMetrics


def test_render_series_basic():
    art = render_series({"a": [0.0, 0.5, 1.0]}, height=5)
    lines = art.splitlines()
    assert lines[0].startswith("1.00 +")
    assert lines[-2].startswith("0.00 +")
    assert "o a" in lines[-1]
    # Three plotted points.
    assert sum(line.count("o") for line in lines[:-1]) == 3


def test_render_series_multiple_markers():
    art = render_series({"first": [0.1, 0.2], "second": [0.9, 0.8]})
    assert "o first" in art and "x second" in art


def test_render_series_clips_out_of_range():
    art = render_series({"a": [-1.0, 2.0]}, height=4)
    assert art  # no crash; values clipped to the rails


def test_render_series_validation():
    with pytest.raises(ValueError):
        render_series({})
    with pytest.raises(ValueError):
        render_series({"a": [1.0], "b": [1.0, 2.0]})
    with pytest.raises(ValueError):
        render_series({"a": [0.5]}, y_range=(1.0, 1.0))


def test_render_sweep_chart():
    sweep = SweepResult(
        "injection_rate",
        (0.1, 0.4),
        {"push->pull": [AttackMetrics(0.2, 0.3, 0.9), AttackMetrics(0.8, 0.9, 0.85)]},
    )
    art = render_sweep_chart(sweep, "asr")
    assert "ASR vs injection_rate" in art
    assert "0.1, 0.4" in art
    assert "push->pull" in art
