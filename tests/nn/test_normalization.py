"""Tests for LayerNorm / BatchNorm1d."""

import numpy as np
import pytest

from repro.nn import BatchNorm1d, LayerNorm, Tensor

from .test_tensor import numerical_gradient


def test_layer_norm_normalizes_last_axis(rng):
    layer = LayerNorm(8)
    x = Tensor(rng.normal(2.0, 3.0, size=(4, 8)))
    out = layer(x).data
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
    assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)


def test_layer_norm_affine_parameters(rng):
    layer = LayerNorm(4)
    layer.gamma.data = np.array([2.0, 2.0, 2.0, 2.0])
    layer.beta.data = np.array([1.0, 1.0, 1.0, 1.0])
    out = layer(Tensor(rng.normal(size=(3, 4)))).data
    assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)


def test_layer_norm_validation(rng):
    with pytest.raises(ValueError):
        LayerNorm(0)
    with pytest.raises(ValueError):
        LayerNorm(4)(Tensor(np.zeros((2, 5))))


def test_layer_norm_gradients(rng):
    layer = LayerNorm(5)
    x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
    target = rng.normal(size=(3, 5))

    def loss_value():
        out = layer(Tensor(x.data))
        return float(((out.data - target) ** 2).mean())

    out = layer(x)
    ((out - Tensor(target)) ** 2.0).mean().backward()
    numeric = numerical_gradient(loss_value, x.data)
    assert np.abs(numeric - x.grad).max() < 1e-6


def test_batch_norm_training_statistics(rng):
    layer = BatchNorm1d(6)
    x = Tensor(rng.normal(3.0, 2.0, size=(32, 6)))
    out = layer(x).data
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
    assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)
    # Running stats moved toward the batch stats.
    assert np.abs(layer.running_mean).max() > 0.1


def test_batch_norm_eval_uses_running_stats(rng):
    layer = BatchNorm1d(4, momentum=0.5)
    for _ in range(20):
        layer(Tensor(rng.normal(5.0, 1.0, size=(16, 4))))
    layer.eval()
    out = layer(Tensor(np.full((1, 4), 5.0))).data
    # An input at the population mean normalizes to ~0 (the running mean
    # tracks noisy 16-sample batch means, so allow their sampling error).
    assert np.allclose(out, 0.0, atol=0.6)


def test_batch_norm_eval_accepts_single_sample(rng):
    layer = BatchNorm1d(3)
    layer(Tensor(rng.normal(size=(8, 3))))
    layer.eval()
    out = layer(Tensor(np.zeros((1, 3))))
    assert out.shape == (1, 3)


def test_batch_norm_validation(rng):
    with pytest.raises(ValueError):
        BatchNorm1d(0)
    with pytest.raises(ValueError):
        BatchNorm1d(4, momentum=1.0)
    layer = BatchNorm1d(4)
    with pytest.raises(ValueError):
        layer(Tensor(np.zeros((1, 4))))  # batch of 1 in training mode
    with pytest.raises(ValueError):
        layer(Tensor(np.zeros((4, 5))))


def test_batch_norm_buffers_not_parameters():
    layer = BatchNorm1d(4)
    names = {name for name, _ in layer.named_parameters()}
    assert names == {"gamma", "beta"}
