"""Tests for the LSTM cell and sequence layer."""

import numpy as np
import pytest

from repro.nn import LSTM, LSTMCell, Linear, Tensor, cross_entropy

from .test_tensor import numerical_gradient


def test_cell_state_shapes(rng):
    cell = LSTMCell(4, 6, rng)
    h, c = cell.initial_state(3)
    assert h.shape == (3, 6) and c.shape == (3, 6)
    h2, c2 = cell(Tensor(np.zeros((3, 4))), (h, c))
    assert h2.shape == (3, 6) and c2.shape == (3, 6)


def test_forget_gate_bias_initialized_to_one(rng):
    cell = LSTMCell(4, 6, rng)
    bias = cell.bias.data
    assert np.allclose(bias[6:12], 1.0)
    assert np.allclose(bias[:6], 0.0)


def test_hidden_bounded_by_tanh(rng):
    lstm = LSTM(4, 8, rng)
    x = Tensor(rng.normal(size=(2, 10, 4)) * 5.0)
    h = lstm(x)
    assert (np.abs(h.data) <= 1.0).all()


def test_return_sequence_shape(rng):
    lstm = LSTM(4, 8, rng)
    out = lstm(Tensor(np.zeros((2, 7, 4))), return_sequence=True)
    assert out.shape == (2, 7, 8)


def test_last_hidden_equals_sequence_tail(rng):
    lstm = LSTM(3, 5, rng)
    x = Tensor(rng.normal(size=(2, 6, 3)))
    last = lstm(Tensor(x.data))
    sequence = lstm(Tensor(x.data), return_sequence=True)
    assert np.allclose(last.data, sequence.data[:, -1, :])


def test_input_shape_validated(rng):
    lstm = LSTM(3, 5, rng)
    with pytest.raises(ValueError):
        lstm(Tensor(np.zeros((2, 3))))


def test_order_sensitivity(rng):
    """The LSTM distinguishes temporal order (mirror-pair separability)."""
    lstm = LSTM(2, 8, rng)
    forward_seq = rng.normal(size=(1, 6, 2))
    backward_seq = forward_seq[:, ::-1, :].copy()
    h_fwd = lstm(Tensor(forward_seq)).data
    h_bwd = lstm(Tensor(backward_seq)).data
    assert not np.allclose(h_fwd, h_bwd, atol=1e-3)


def test_lstm_end_to_end_gradients(rng):
    lstm = LSTM(3, 4, rng)
    head = Linear(4, 2, rng)
    x = Tensor(rng.normal(size=(2, 5, 3)), requires_grad=True)
    labels = np.array([0, 1])

    def loss_value():
        return cross_entropy(head(lstm(Tensor(x.data))), labels).item()

    cross_entropy(head(lstm(x)), labels).backward()
    for name, param in list(lstm.named_parameters()) + [("x", x)]:
        numeric = numerical_gradient(loss_value, param.data)
        assert np.abs(numeric - param.grad).max() < 1e-6, name


def test_gradient_flows_to_first_frame(rng):
    """No vanishing-to-zero over a 32-step unroll (forget bias helps)."""
    lstm = LSTM(2, 8, rng)
    x = Tensor(rng.normal(size=(1, 32, 2)), requires_grad=True)
    lstm(x).sum().backward()
    assert np.abs(x.grad[0, 0]).max() > 1e-8
