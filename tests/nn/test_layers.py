"""Tests for the Module system and feed-forward layers."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tanh,
    Tensor,
)


def make_mlp(rng):
    return Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))


def test_named_parameters_traversal(rng):
    mlp = make_mlp(rng)
    names = dict(mlp.named_parameters())
    assert set(names) == {
        "layers.0.weight",
        "layers.0.bias",
        "layers.2.weight",
        "layers.2.bias",
    }


def test_num_parameters(rng):
    mlp = make_mlp(rng)
    assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


def test_train_eval_propagates(rng):
    class Net(Module):
        def __init__(self):
            super().__init__()
            self.drop = Dropout(0.5, rng)

        def forward(self, x):
            return self.drop(x)

    net = Net()
    net.eval()
    assert not net.drop.training
    net.train()
    assert net.drop.training


def test_state_dict_roundtrip(rng):
    a = make_mlp(rng)
    b = make_mlp(np.random.default_rng(99))
    b.load_state_dict(a.state_dict())
    x = Tensor(np.ones((2, 4)))
    assert np.allclose(a(x).data, b(x).data)


def test_load_state_dict_validates_keys(rng):
    mlp = make_mlp(rng)
    state = mlp.state_dict()
    state.pop("layers.0.bias")
    with pytest.raises(KeyError):
        mlp.load_state_dict(state)


def test_load_state_dict_validates_shapes(rng):
    mlp = make_mlp(rng)
    state = mlp.state_dict()
    state["layers.0.weight"] = np.zeros((2, 2))
    with pytest.raises(ValueError):
        mlp.load_state_dict(state)


def test_zero_grad_clears(rng):
    mlp = make_mlp(rng)
    out = mlp(Tensor(np.ones((1, 4)))).sum()
    out.backward()
    assert any(p.grad is not None for p in mlp.parameters())
    mlp.zero_grad()
    assert all(p.grad is None for p in mlp.parameters())


def test_astype_casts_parameters(rng):
    mlp = make_mlp(rng)
    mlp.astype(np.float32)
    assert mlp.dtype == np.float32
    out = mlp(Tensor(np.ones((1, 4), dtype=np.float32)))
    assert out.data.dtype == np.float32


def test_linear_shapes(rng):
    layer = Linear(5, 3, rng)
    out = layer(Tensor(np.zeros((7, 5))))
    assert out.shape == (7, 3)


def test_linear_no_bias(rng):
    layer = Linear(5, 3, rng, bias=False)
    assert layer.bias is None
    assert len(list(layer.named_parameters())) == 1


def test_conv_layer_forward(rng):
    layer = Conv2d(2, 4, 3, rng, padding=1)
    out = layer(Tensor(np.zeros((1, 2, 8, 8))))
    assert out.shape == (1, 4, 8, 8)


def test_maxpool_layer(rng):
    layer = MaxPool2d(2)
    out = layer(Tensor(np.zeros((1, 1, 8, 8))))
    assert out.shape == (1, 1, 4, 4)


def test_flatten(rng):
    out = Flatten()(Tensor(np.zeros((3, 2, 4, 4))))
    assert out.shape == (3, 32)


def test_relu_tanh_layers():
    x = Tensor(np.array([[-1.0, 1.0]]))
    assert np.allclose(ReLU()(x).data, [[0.0, 1.0]])
    assert np.allclose(Tanh()(x).data, np.tanh([[-1.0, 1.0]]))


def test_sequential_indexing(rng):
    mlp = make_mlp(rng)
    assert len(mlp) == 3
    assert isinstance(mlp[1], ReLU)


def test_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        Module()(1)
