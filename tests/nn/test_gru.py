"""Tests for the GRU cell and sequence layer."""

import numpy as np
import pytest

from repro.nn import GRU, GRUCell, Linear, Tensor, cross_entropy

from .test_tensor import numerical_gradient


def test_cell_shapes(rng):
    cell = GRUCell(4, 6, rng)
    hidden = cell.initial_state(3)
    assert hidden.shape == (3, 6)
    new_hidden = cell(Tensor(np.zeros((3, 4))), hidden)
    assert new_hidden.shape == (3, 6)


def test_hidden_bounded(rng):
    gru = GRU(4, 8, rng)
    hidden = gru(Tensor(rng.normal(size=(2, 12, 4)) * 5.0))
    assert (np.abs(hidden.data) <= 1.0).all()


def test_zero_update_gate_keeps_state(rng):
    """With the update gate saturated to 1, the state never changes."""
    cell = GRUCell(2, 3, rng)
    # Saturate the update gate via its bias (order: reset, update, cand).
    cell.bias.data[3:6] = 50.0
    hidden = Tensor(np.full((1, 3), 0.37))
    new_hidden = cell(Tensor(np.ones((1, 2))), hidden)
    assert np.allclose(new_hidden.data, 0.37, atol=1e-6)


def test_return_sequence(rng):
    gru = GRU(3, 5, rng)
    sequence = gru(Tensor(np.zeros((2, 7, 3))), return_sequence=True)
    assert sequence.shape == (2, 7, 5)
    last = gru(Tensor(np.zeros((2, 7, 3))))
    assert np.allclose(last.data, sequence.data[:, -1, :])


def test_input_rank_validated(rng):
    with pytest.raises(ValueError):
        GRU(3, 5, rng)(Tensor(np.zeros((2, 3))))


def test_order_sensitivity(rng):
    gru = GRU(2, 8, rng)
    forward_seq = rng.normal(size=(1, 6, 2))
    h_fwd = gru(Tensor(forward_seq)).data
    h_bwd = gru(Tensor(forward_seq[:, ::-1, :].copy())).data
    assert not np.allclose(h_fwd, h_bwd, atol=1e-3)


def test_gru_end_to_end_gradients(rng):
    gru = GRU(3, 4, rng)
    head = Linear(4, 2, rng)
    x = Tensor(rng.normal(size=(2, 5, 3)), requires_grad=True)
    labels = np.array([0, 1])

    def loss_value():
        return cross_entropy(head(gru(Tensor(x.data))), labels).item()

    cross_entropy(head(gru(x)), labels).backward()
    for name, param in list(gru.named_parameters()) + [("x", x)]:
        numeric = numerical_gradient(loss_value, param.data)
        assert np.abs(numeric - param.grad).max() < 1e-6, name


def test_gru_has_fewer_parameters_than_lstm(rng):
    from repro.nn import LSTM

    gru = GRU(16, 32, rng)
    lstm = LSTM(16, 32, rng)
    assert gru.num_parameters() < lstm.num_parameters()
