"""Tests for conv/pool/dropout/softmax/losses."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    conv2d,
    cross_entropy,
    dropout,
    linear,
    log_softmax,
    max_pool2d,
    mse_loss,
    softmax,
)
from .test_tensor import numerical_gradient


def test_conv2d_output_shape():
    x = Tensor(np.zeros((2, 3, 8, 8)))
    w = Tensor(np.zeros((5, 3, 3, 3)))
    assert conv2d(x, w, padding=1).shape == (2, 5, 8, 8)
    assert conv2d(x, w, padding=0).shape == (2, 5, 6, 6)
    assert conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)


def test_conv2d_identity_kernel():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 1, 5, 5))
    kernel = np.zeros((1, 1, 3, 3))
    kernel[0, 0, 1, 1] = 1.0  # delta kernel = identity
    out = conv2d(Tensor(x), Tensor(kernel), padding=1)
    assert np.allclose(out.data, x)


def test_conv2d_matches_manual_cross_correlation():
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    w = np.array([[[[1.0, 0.0], [0.0, -1.0]]]])
    out = conv2d(Tensor(x), Tensor(w)).data[0, 0]
    expected = x[0, 0, :3, :3] - x[0, 0, 1:, 1:]
    assert np.allclose(out, expected)


def test_conv2d_channel_mismatch_rejected():
    with pytest.raises(ValueError):
        conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((3, 4, 3, 3))))


def test_conv2d_gradients():
    rng = np.random.default_rng(1)
    x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
    w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.2, requires_grad=True)
    b = Tensor(rng.normal(size=3) * 0.1, requires_grad=True)
    target = rng.normal(size=(2, 3, 6, 6))

    def loss_value():
        out = conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data), padding=1)
        return float(((out.data - target) ** 2).mean())

    out = conv2d(x, w, b, padding=1)
    mse_loss(out, target).backward()
    for leaf in (x, w, b):
        numeric = numerical_gradient(loss_value, leaf.data)
        assert np.abs(numeric - leaf.grad).max() < 1e-6


def test_max_pool_forward():
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = max_pool2d(Tensor(x), 2)
    assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])


def test_max_pool_gradient_routes_to_max():
    x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4), requires_grad=True)
    max_pool2d(x, 2).sum().backward()
    expected = np.zeros((4, 4))
    expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
    assert np.allclose(x.grad[0, 0], expected)


def test_max_pool_validation():
    with pytest.raises(ValueError):
        max_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)
    with pytest.raises(NotImplementedError):
        max_pool2d(Tensor(np.zeros((1, 1, 4, 4))), 2, stride=1)


def test_dropout_eval_is_identity(rng):
    x = Tensor(np.ones((4, 4)))
    out = dropout(x, 0.5, rng, training=False)
    assert out is x


def test_dropout_preserves_expectation(rng):
    x = Tensor(np.ones((200, 200)))
    out = dropout(x, 0.25, rng, training=True)
    assert out.data.mean() == pytest.approx(1.0, abs=0.02)
    # Surviving entries are scaled by 1 / keep.
    kept = out.data[out.data > 0]
    assert np.allclose(kept, 1.0 / 0.75)


def test_dropout_rate_validation(rng):
    with pytest.raises(ValueError):
        dropout(Tensor(np.ones(3)), 1.0, rng, training=True)


def test_log_softmax_normalizes():
    logits = Tensor(np.array([[1.0, 2.0, 3.0]]))
    log_probs = log_softmax(logits, axis=1)
    assert np.exp(log_probs.data).sum() == pytest.approx(1.0)


def test_log_softmax_shift_invariant():
    logits = np.array([[1.0, 2.0, 3.0]])
    a = log_softmax(Tensor(logits), axis=1).data
    b = log_softmax(Tensor(logits + 100.0), axis=1).data
    assert np.allclose(a, b)


def test_softmax_stable_with_large_logits():
    probs = softmax(np.array([[1000.0, 1000.0]]))
    assert np.allclose(probs, 0.5)


def test_cross_entropy_value():
    logits = Tensor(np.array([[10.0, 0.0], [0.0, 10.0]]))
    loss = cross_entropy(logits, np.array([0, 1]))
    assert loss.item() == pytest.approx(0.0, abs=1e-3)


def test_cross_entropy_gradient_is_softmax_minus_onehot():
    logits = Tensor(np.array([[1.0, 2.0, 0.5]]), requires_grad=True)
    cross_entropy(logits, np.array([1])).backward()
    probs = softmax(logits.data)
    expected = probs.copy()
    expected[0, 1] -= 1.0
    assert np.allclose(logits.grad, expected)


def test_cross_entropy_validation():
    with pytest.raises(ValueError):
        cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
    with pytest.raises(ValueError):
        cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))


def test_linear_matches_manual(rng):
    x = rng.normal(size=(4, 3))
    w = rng.normal(size=(2, 3))
    b = rng.normal(size=2)
    out = linear(Tensor(x), Tensor(w), Tensor(b))
    assert np.allclose(out.data, x @ w.T + b)


def test_mse_loss_value():
    pred = Tensor(np.array([1.0, 2.0]))
    assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)
