"""Tests for the autodiff engine: ops, broadcasting, graph traversal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concat, stack


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(op, *shapes, seed=0, tol=1e-7):
    """Compare analytic and numerical gradients of scalar-valued ``op``."""
    rng = np.random.default_rng(seed)
    leaves = [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]
    out = op(*leaves)
    out.backward()
    for leaf in leaves:
        numeric = numerical_gradient(lambda: op(*[Tensor(l.data) for l in leaves]).item(), leaf.data)
        assert np.abs(numeric - leaf.grad).max() < tol, f"shape {leaf.shape}"


def test_add_gradient():
    check_gradient(lambda a, b: (a + b).sum(), (3, 4), (3, 4))


def test_add_broadcast_gradient():
    check_gradient(lambda a, b: (a + b).sum(), (3, 4), (4,))
    check_gradient(lambda a, b: (a + b).sum(), (2, 3, 4), (1, 4))


def test_mul_gradient():
    check_gradient(lambda a, b: (a * b).sum(), (3, 4), (3, 4))
    check_gradient(lambda a, b: (a * b).sum(), (3, 4), (1,))


def test_div_gradient():
    check_gradient(lambda a, b: (a / (b * b + 1.0)).sum(), (3,), (3,))


def test_pow_and_sqrt_gradient():
    check_gradient(lambda a: ((a * a + 1.0) ** 1.5).sum(), (4,))
    check_gradient(lambda a: ((a * a + 1.0).sqrt()).sum(), (4,))


def test_matmul_gradient():
    check_gradient(lambda a, b: (a @ b).sum(), (3, 4), (4, 2))


def test_matmul_vector_cases():
    check_gradient(lambda a, b: (a @ b).sum(), (4,), (4, 2))
    check_gradient(lambda a, b: (a @ b).sum(), (3, 4), (4,))


def test_reductions_gradient():
    check_gradient(lambda a: a.mean(), (3, 5))
    check_gradient(lambda a: a.sum(axis=1).sum(), (3, 5))
    check_gradient(lambda a: a.mean(axis=0, keepdims=True).sum(), (3, 5))


def test_max_gradient_routes_to_argmax():
    x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
    x.max().backward()
    assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])


def test_max_gradient_splits_ties():
    x = Tensor(np.array([3.0, 3.0]), requires_grad=True)
    x.max().backward()
    assert np.allclose(x.grad, [0.5, 0.5])


def test_reshape_transpose_gradient():
    check_gradient(lambda a: (a.reshape(6) * np.arange(6)).sum(), (2, 3))
    check_gradient(lambda a: (a.transpose() @ a).sum(), (3, 4))


def test_getitem_gradient():
    x = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
    y = x[0, :2].sum()
    y.backward()
    expected = np.zeros((2, 3))
    expected[0, :2] = 1.0
    assert np.allclose(x.grad, expected)


def test_activation_gradients():
    check_gradient(lambda a: a.tanh().sum(), (5,))
    check_gradient(lambda a: a.sigmoid().sum(), (5,))
    check_gradient(lambda a: (a * a).exp().sum(), (4,), tol=1e-5)
    check_gradient(lambda a: (a * a + 1.0).log().sum(), (4,))
    check_gradient(lambda a: a.abs().sum(), (4,))


def test_relu_gradient_masks_negative():
    x = Tensor(np.array([-1.0, 2.0, -3.0, 4.0]), requires_grad=True)
    x.relu().sum().backward()
    assert np.allclose(x.grad, [0.0, 1.0, 0.0, 1.0])


def test_stack_and_concat_gradient():
    check_gradient(lambda a, b: stack([a, b], axis=0).sum(), (3,), (3,))
    check_gradient(lambda a, b: (concat([a, b], axis=1) ** 2.0).sum(), (2, 3), (2, 2))


def test_diamond_graph_accumulates():
    x = Tensor(np.array([2.0]), requires_grad=True)
    y = x * x + x * 3.0  # x used twice
    y.backward()
    assert np.allclose(x.grad, [2 * 2.0 + 3.0])


def test_backward_requires_scalar():
    x = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(RuntimeError):
        (x * 2).backward()


def test_backward_on_detached_raises():
    x = Tensor(np.ones(1))
    with pytest.raises(RuntimeError):
        x.backward()


def test_detach_stops_gradient():
    x = Tensor(np.ones(3), requires_grad=True)
    y = (x.detach() * 2.0).sum()
    assert not y.requires_grad


def test_no_grad_tracking_without_requires_grad():
    x = Tensor(np.ones(3))
    y = x * 2.0
    assert not y.requires_grad
    assert y._parents == ()


def test_int_labels_not_promoted():
    labels = Tensor(np.array([0, 1, 2]))
    assert labels.data.dtype == np.int64


def test_wrapping_tensor_rejected():
    with pytest.raises(TypeError):
        Tensor(Tensor(np.ones(2)))


def test_zero_grad():
    x = Tensor(np.ones(2), requires_grad=True)
    (x * 2).sum().backward()
    assert x.grad is not None
    x.zero_grad()
    assert x.grad is None


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_chain_rule_property(rows, cols, seed):
    """Random small expression: analytic == numerical gradient."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, cols))
    x = Tensor(data.copy(), requires_grad=True)
    ((x * x).tanh() + x.sigmoid()).mean().backward()
    numeric = numerical_gradient(
        lambda: float(np.mean(np.tanh(data * data) + 1 / (1 + np.exp(-data)))), data
    )
    assert np.abs(numeric - x.grad).max() < 1e-6
