"""Tests for checkpoint save/load."""

import numpy as np

from repro.nn import Linear, ReLU, Sequential, Tensor, load_checkpoint, save_checkpoint


def test_checkpoint_roundtrip(tmp_path, rng):
    model = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
    path = tmp_path / "model.npz"
    save_checkpoint(model, path)

    fresh = Sequential(
        Linear(4, 8, np.random.default_rng(123)),
        ReLU(),
        Linear(8, 2, np.random.default_rng(123)),
    )
    x = Tensor(np.ones((3, 4)))
    assert not np.allclose(model(x).data, fresh(x).data)
    load_checkpoint(fresh, path)
    assert np.allclose(model(x).data, fresh(x).data)


def test_checkpoint_preserves_dtype(tmp_path, rng):
    model = Sequential(Linear(4, 2, rng)).astype(np.float32)
    path = tmp_path / "model32.npz"
    save_checkpoint(model, path)
    load_checkpoint(model, path)
    assert model.dtype == np.float32
