"""Tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Tensor, clip_grad_norm


def quadratic_step(optimizer_factory, steps=200):
    """Minimize ||x - target||^2; return the final parameter."""
    target = np.array([1.0, -2.0, 3.0])
    x = Tensor(np.zeros(3), requires_grad=True)
    optimizer = optimizer_factory([x])
    for _ in range(steps):
        loss = ((x - target) * (x - target)).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return x.data, target


def test_sgd_converges_on_quadratic():
    final, target = quadratic_step(lambda p: SGD(p, lr=0.1))
    assert np.allclose(final, target, atol=1e-4)


def test_sgd_momentum_converges():
    final, target = quadratic_step(lambda p: SGD(p, lr=0.05, momentum=0.9))
    assert np.allclose(final, target, atol=1e-4)


def test_adam_converges_on_quadratic():
    final, target = quadratic_step(lambda p: Adam(p, lr=0.1), steps=400)
    assert np.allclose(final, target, atol=1e-3)


def test_weight_decay_shrinks_solution():
    def factory(decay):
        return lambda p: SGD(p, lr=0.1, weight_decay=decay)

    free, target = quadratic_step(factory(0.0))
    decayed, _ = quadratic_step(factory(0.5))
    assert np.linalg.norm(decayed) < np.linalg.norm(free)


def test_step_skips_parameters_without_grad():
    x = Tensor(np.ones(2), requires_grad=True)
    optimizer = SGD([x], lr=0.1)
    optimizer.step()  # no grad yet: no movement, no crash
    assert np.allclose(x.data, 1.0)


def test_optimizer_validation():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        Adam([Tensor(np.ones(1), requires_grad=True)], lr=0.0)


def test_zero_grad_via_optimizer():
    x = Tensor(np.ones(2), requires_grad=True)
    (x * x).sum().backward()
    optimizer = SGD([x], lr=0.1)
    optimizer.zero_grad()
    assert x.grad is None


def test_clip_grad_norm_scales_down():
    x = Tensor(np.ones(4), requires_grad=True)
    x.grad = np.full(4, 10.0)
    norm_before = clip_grad_norm([x], max_norm=1.0)
    assert norm_before == pytest.approx(20.0)
    assert np.linalg.norm(x.grad) == pytest.approx(1.0, rel=1e-6)


def test_clip_grad_norm_no_clip_below_max():
    x = Tensor(np.ones(4), requires_grad=True)
    x.grad = np.full(4, 0.1)
    clip_grad_norm([x], max_norm=10.0)
    assert np.allclose(x.grad, 0.1)


def test_clip_grad_norm_validation():
    with pytest.raises(ValueError):
        clip_grad_norm([], max_norm=0.0)


def test_adam_bias_correction_first_step():
    # After one step with grad g, Adam moves by ~lr * sign(g).
    x = Tensor(np.array([0.0]), requires_grad=True)
    optimizer = Adam([x], lr=0.01)
    x.grad = np.array([5.0])
    optimizer.step()
    assert x.data[0] == pytest.approx(-0.01, rel=1e-3)
