"""Hypothesis property tests for the autodiff engine.

These check algebraic identities that must hold for *any* input —
linearity of the gradient, broadcasting consistency, and agreement between
equivalent expression forms — complementing the pointwise finite-difference
checks in ``test_tensor.py``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor

SMALL_FLOATS = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=max_side),
        elements=SMALL_FLOATS,
    )


@settings(max_examples=40, deadline=None)
@given(data=small_arrays())
def test_sum_gradient_is_ones(data):
    x = Tensor(data.copy(), requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(data=small_arrays(), scale=SMALL_FLOATS)
def test_gradient_linearity(data, scale):
    """d(scale * sum) = scale * d(sum)."""
    x = Tensor(data.copy(), requires_grad=True)
    (x * scale).sum().backward()
    assert np.allclose(x.grad, scale * np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(data=small_arrays())
def test_add_self_doubles_gradient(data):
    x = Tensor(data.copy(), requires_grad=True)
    (x + x).sum().backward()
    assert np.allclose(x.grad, 2.0 * np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(data=small_arrays())
def test_forward_matches_numpy(data):
    x = Tensor(data.copy())
    assert np.allclose(x.tanh().data, np.tanh(data))
    assert np.allclose(x.relu().data, np.maximum(data, 0.0))
    assert np.allclose(x.abs().data, np.abs(data))
    assert np.allclose(x.exp().data, np.exp(data))


@settings(max_examples=40, deadline=None)
@given(data=small_arrays())
def test_mean_equals_sum_over_size(data):
    x_mean = Tensor(data.copy(), requires_grad=True)
    x_mean.mean().backward()
    x_sum = Tensor(data.copy(), requires_grad=True)
    (x_sum.sum() * (1.0 / data.size)).backward()
    assert np.allclose(x_mean.grad, x_sum.grad)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 4),
    inner=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 999),
)
def test_matmul_gradient_shapes(rows, inner, cols, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, inner)), requires_grad=True)
    b = Tensor(rng.normal(size=(inner, cols)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == a.shape
    assert b.grad.shape == b.shape
    # d(sum(AB))/dA = 1 B^T and symmetric for B.
    assert np.allclose(a.grad, np.ones((rows, cols)) @ b.data.T)
    assert np.allclose(b.grad, a.data.T @ np.ones((rows, cols)))


@settings(max_examples=40, deadline=None)
@given(data=small_arrays(), seed=st.integers(0, 999))
def test_broadcast_gradient_shape_matches_leaf(data, seed):
    rng = np.random.default_rng(seed)
    scalar = Tensor(np.array(rng.normal()), requires_grad=True)
    x = Tensor(data.copy(), requires_grad=True)
    (x * scalar).sum().backward()
    assert scalar.grad.shape == scalar.shape
    assert np.allclose(scalar.grad, data.sum())


@settings(max_examples=30, deadline=None)
@given(data=small_arrays())
def test_sub_is_add_neg(data):
    a = Tensor(data.copy(), requires_grad=True)
    b = Tensor(data.copy() + 1.0, requires_grad=True)
    (a - b).sum().backward()
    assert np.allclose(a.grad, 1.0)
    assert np.allclose(b.grad, -1.0)
