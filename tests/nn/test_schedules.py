"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    ScheduledOptimizer,
    Tensor,
    constant_schedule,
    cosine_decay,
    step_decay,
    warmup,
)


def test_constant_schedule():
    schedule = constant_schedule()
    assert schedule(0) == schedule(100) == 1.0


def test_step_decay_halves():
    schedule = step_decay(step_size=10, gamma=0.5)
    assert schedule(0) == 1.0
    assert schedule(9) == 1.0
    assert schedule(10) == 0.5
    assert schedule(25) == 0.25


def test_step_decay_validation():
    with pytest.raises(ValueError):
        step_decay(0)
    with pytest.raises(ValueError):
        step_decay(5, gamma=0.0)


def test_cosine_decay_endpoints():
    schedule = cosine_decay(total_epochs=20, floor=0.1)
    assert schedule(0) == pytest.approx(1.0)
    assert schedule(20) == pytest.approx(0.1)
    assert schedule(100) == pytest.approx(0.1)  # clamped past the horizon
    assert schedule(10) == pytest.approx(0.55)  # midpoint


def test_cosine_decay_monotone():
    schedule = cosine_decay(total_epochs=30)
    values = [schedule(epoch) for epoch in range(31)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_cosine_validation():
    with pytest.raises(ValueError):
        cosine_decay(0)
    with pytest.raises(ValueError):
        cosine_decay(10, floor=2.0)


def test_warmup_ramps_linearly():
    schedule = warmup(constant_schedule(), warmup_epochs=4)
    assert schedule(0) == pytest.approx(0.25)
    assert schedule(3) == pytest.approx(1.0)
    assert schedule(10) == 1.0


def test_warmup_validation():
    with pytest.raises(ValueError):
        warmup(constant_schedule(), -1)


def test_scheduled_optimizer_updates_lr():
    param = Tensor(np.zeros(2), requires_grad=True)
    optimizer = SGD([param], lr=0.1)
    scheduled = ScheduledOptimizer(optimizer, step_decay(1, gamma=0.5))
    assert scheduled.current_lr == pytest.approx(0.1)
    scheduled.advance_epoch()
    assert scheduled.current_lr == pytest.approx(0.05)
    scheduled.advance_epoch()
    assert scheduled.current_lr == pytest.approx(0.025)


def test_scheduled_optimizer_steps_with_current_lr():
    param = Tensor(np.array([1.0]), requires_grad=True)
    optimizer = SGD([param], lr=1.0)
    scheduled = ScheduledOptimizer(optimizer, step_decay(1, gamma=0.1))
    scheduled.advance_epoch()  # lr now 0.1
    param.grad = np.array([1.0])
    scheduled.step()
    assert param.data[0] == pytest.approx(0.9)
    scheduled.zero_grad()
    assert param.grad is None


def test_scheduled_optimizer_requires_lr_attribute():
    class NoLr:
        pass

    with pytest.raises(TypeError):
        ScheduledOptimizer(NoLr(), constant_schedule())
