"""Smoke tests for the example scripts.

Each example must parse, expose a ``main`` entry point, and document
itself; the quickstart is additionally executed end to end at a micro
scale by monkeypatching its preset lookup (full executions are exercised
manually / in benchmarks — they train real models).
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLE_FILES}
    assert {
        "quickstart",
        "backdoor_attack",
        "frame_importance_analysis",
        "trigger_placement",
        "defense_evaluation",
        "rdi_modality",
    } <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_is_well_formed(path):
    tree = ast.parse(path.read_text())
    docstring = ast.get_docstring(tree)
    assert docstring and "Run:" in docstring, "examples document how to run"
    module = load_example(path)
    assert callable(getattr(module, "main", None))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_help_does_not_crash(path, capsys, monkeypatch):
    module = load_example(path)
    monkeypatch.setattr(sys, "argv", [path.name, "--help"])
    with pytest.raises(SystemExit) as excinfo:
        module.main()
    assert excinfo.value.code == 0
    assert "usage" in capsys.readouterr().out.lower()
